// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// UV-cell computation — the 2D baseline of Cheng et al., "UV-diagram: a
// Voronoi diagram for uncertain data" (ICDE 2010, reference [9]). The
// original derives each cell's boundary from hyperbolic curve intersections
// of circular uncertainty regions; that code is not available, so this
// module reproduces both the *semantics* (a conservative region where the
// object may be the NN, built on circumscribed circles) and the *cost
// structure* (fine-grained per-object boundary geometry, an order of
// magnitude more work than SE's O(2d·log(|D|/Δ)) slab tests):
//
//   1. a high-precision boundary probe: `rays` directions from the circle
//      center, each bisected to `ray_tolerance` against exact point-level
//      domination predicates — the analogue of [9]'s curve computations;
//   2. a conservative cell cover: adaptive refinement of the domain where a
//      cell is discarded only when provably dominated under circle-distance
//      bounds — this is what the UV-index actually stores.
//
// See DESIGN.md §4(2) for the substitution rationale.

#ifndef PVDB_UV_UV_CELL_H_
#define PVDB_UV_UV_CELL_H_

#include <span>
#include <vector>

#include "src/geom/rect.h"
#include "src/uncertain/uncertain_object.h"

namespace pvdb::uv {

/// A circle: circumscribed bound of a 2D uncertainty region ([9] assumes
/// circular regions; rectangles are wrapped, matching Section II's account
/// of the UV/PV comparison).
struct Circle {
  geom::Point center;
  double radius;
};

/// Circumscribed circle of a 2D rectangle.
Circle Circumscribe(const geom::Rect& region);

/// UV-cell construction parameters.
struct UvCellOptions {
  /// Boundary probe directions (the high-precision geometry workload).
  int rays = 360;
  /// Bisection tolerance of each boundary probe, domain units.
  double ray_tolerance = 0.1;
  /// Cover refinement: cells at most this wide are accepted without proof.
  double resolution = 40.0;
  /// Refinement budget per object.
  int max_cells = 16384;
};

/// Result of one UV-cell computation.
struct UvCover {
  /// Conservative cover: V(o) ⊆ ∪ cells (disjoint rectangles).
  std::vector<geom::Rect> cells;
  /// MBR of the cover (stored as the object's bounding rectangle).
  geom::Rect mbr{2};
  /// Max boundary radius seen by the probe (diagnostic).
  double max_boundary_radius = 0.0;
  /// Number of refinement cells examined (cost diagnostic).
  int cells_examined = 0;
};

/// Computes the conservative UV-cell cover of `o` against candidate regions
/// `cset` (uncertainty rectangles of other objects) within `domain`.
/// 2D only.
UvCover ComputeUvCover(const uncertain::UncertainObject& o,
                       std::span<const geom::Rect> cset,
                       const geom::Rect& domain, const UvCellOptions& options);

/// Point-level predicate under circle distances: may `o` be the nearest
/// object at `p`, given candidate circles? Exact for circles.
bool CirclePointPossiblyNearest(const Circle& o,
                                std::span<const Circle> others,
                                const geom::Point& p);

}  // namespace pvdb::uv

#endif  // PVDB_UV_UV_CELL_H_
