// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// The UV-index baseline ([9], 2D only): UV-cell covers stored in the same
// octree + extensible-hash carrier as the PV-index, with identical query
// semantics (leaf lookup + minmax pruning). Used by Figures 9(e), 9(h) and
// 10(g). Construction cost is dominated by the per-object boundary geometry
// in uv_cell.cc — the property the paper's 15–25× construction-time gap
// (Fig 10(g)) rests on.

#ifndef PVDB_UV_UV_INDEX_H_
#define PVDB_UV_UV_INDEX_H_

#include <memory>
#include <vector>

#include "src/common/stats.h"
#include "src/common/timer.h"
#include "src/pv/cset.h"
#include "src/pv/octree.h"
#include "src/pv/pnnq.h"
#include "src/pv/secondary_index.h"
#include "src/uv/uv_cell.h"

namespace pvdb::uv {

/// UV-index tunables.
struct UvIndexOptions {
  UvCellOptions cell;
  pv::CSetOptions cset;
  pv::OctreeOptions octree;
};

/// Construction instrumentation (mirrors pv::BuildStats).
struct UvBuildStats {
  double choose_cset_ms = 0.0;
  double compute_cell_ms = 0.0;
  double insert_ms = 0.0;
  double total_ms = 0.0;
  Summary cover_cells;
};

/// The UV-index.
class UvIndex {
 public:
  /// Builds over a 2D database; pages go to `pager` (borrowed).
  static Result<std::unique_ptr<UvIndex>> Build(const uncertain::Dataset& db,
                                                storage::Pager* pager,
                                                const UvIndexOptions& options,
                                                UvBuildStats* stats = nullptr);

  /// PNNQ Step 1 — same contract as PvIndex::QueryPossibleNN (block-kernel
  /// pruning; `scratch` pools the batched distance buffer).
  Result<std::vector<uncertain::ObjectId>> QueryPossibleNN(
      const geom::Point& q, pv::QueryScratch* scratch = nullptr) const;

  const pv::OctreePrimary& primary() const { return *primary_; }
  storage::Pager* pager() const { return pager_; }

 private:
  UvIndex(geom::Rect domain, storage::Pager* pager, UvIndexOptions options);

  geom::Rect domain_;
  UvIndexOptions options_;
  storage::Pager* pager_;
  std::unique_ptr<pv::SecondaryIndex> secondary_;
  std::unique_ptr<pv::OctreePrimary> primary_;
};

}  // namespace pvdb::uv

#endif  // PVDB_UV_UV_INDEX_H_
