// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/uv/uv_index.h"

#include <algorithm>

#include "src/geom/distance.h"
#include "src/pv/pnnq.h"

namespace pvdb::uv {

UvIndex::UvIndex(geom::Rect domain, storage::Pager* pager,
                 UvIndexOptions options)
    : domain_(std::move(domain)), options_(options), pager_(pager) {}

Result<std::unique_ptr<UvIndex>> UvIndex::Build(const uncertain::Dataset& db,
                                                storage::Pager* pager,
                                                const UvIndexOptions& options,
                                                UvBuildStats* stats) {
  PVDB_CHECK(pager != nullptr);
  if (db.dim() != 2) {
    return Status::NotSupported(
        "the UV-index supports 2D data only (see Section II)");
  }
  UvBuildStats local;
  UvBuildStats* st = stats ? stats : &local;
  *st = UvBuildStats{};
  StopWatch total;

  auto index = std::unique_ptr<UvIndex>(
      new UvIndex(db.domain(), pager, options));
  PVDB_ASSIGN_OR_RETURN(pv::SecondaryIndex secondary,
                        pv::SecondaryIndex::Create(pager));
  index->secondary_ =
      std::make_unique<pv::SecondaryIndex>(std::move(secondary));
  pv::SecondaryIndex* secondary_ptr = index->secondary_.get();
  index->primary_ = std::make_unique<pv::OctreePrimary>(
      db.domain(), pager,
      [secondary_ptr](uncertain::ObjectId id) {
        return secondary_ptr->GetUbr(id);
      },
      options.octree);

  rtree::RStarTree mean_tree(2);
  for (const auto& o : db.objects()) {
    mean_tree.Insert(geom::Rect::FromPoint(o.MeanPosition()), o.id());
  }

  for (const auto& o : db.objects()) {
    StopWatch cset_watch;
    const pv::CSetResult cset =
        pv::ChooseCSet(o, db, mean_tree, options.cset);
    st->choose_cset_ms += cset_watch.ElapsedMillis();

    StopWatch cell_watch;
    const UvCover cover =
        ComputeUvCover(o, cset.regions, db.domain(), options.cell);
    st->compute_cell_ms += cell_watch.ElapsedMillis();
    st->cover_cells.Add(static_cast<double>(cover.cells.size()));

    StopWatch insert_watch;
    PVDB_RETURN_NOT_OK(index->secondary_->Put(o, cover.mbr));
    const auto& cells = cover.cells;
    PVDB_RETURN_NOT_OK(index->primary_->InsertFiltered(
        o.id(), o.region(), cover.mbr, [&cells](const geom::Rect& leaf) {
          for (const geom::Rect& cell : cells) {
            if (cell.Intersects(leaf)) return true;
          }
          return false;
        }));
    st->insert_ms += insert_watch.ElapsedMillis();
  }
  st->total_ms = total.ElapsedMillis();
  return index;
}

Result<std::vector<uncertain::ObjectId>> UvIndex::QueryPossibleNN(
    const geom::Point& q, pv::QueryScratch* scratch) const {
  PVDB_ASSIGN_OR_RETURN(pv::LeafBlock block, primary_->QueryPointBlock(q));
  std::vector<uncertain::ObjectId> out =
      pv::Step1PruneMinMax(block, q, scratch);
  // A UV cover may index one object into several leaves of the same region;
  // dedupe (the PV-index has exactly one entry per (object, leaf) pair).
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace pvdb::uv
