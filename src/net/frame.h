// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// The wire frame: every pvdb RPC travels as one length-prefixed binary
// frame with a versioned 16-byte header and a CRC-32C over the payload.
//
//   offset  size  field
//   0       4     magic "PVDF"
//   4       1     protocol version (FrameVersionFor(type), ≤ kFrameVersion)
//   5       1     message type (net::MessageType)
//   6       2     flags (must be zero in this version)
//   8       4     payload length in bytes (little-endian)
//   12      4     CRC-32C of the payload bytes
//   16      —     payload
//
// The first magic byte 'P' differs from HTTP's "GET " / "POST", which is
// how the server tells a binary peer from a browser asking /metrics on
// the same port. Torn, truncated, oversized and bit-flipped frames all
// decode to a descriptive Corruption status — never a crash, never a
// silently wrong payload.

#ifndef PVDB_NET_FRAME_H_
#define PVDB_NET_FRAME_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/status.h"

namespace pvdb::net {

/// Highest protocol version this build speaks. Version 2 added the typed
/// query-vocabulary messages (kQueryRequestBatch / kQueryAnswerBatch /
/// kRangeStep1Batch); version-1 frames carrying the original message types
/// still decode, so a v1 peer keeps working against a v2 server.
inline constexpr uint8_t kFrameVersion = 2;
/// Oldest protocol version this build still accepts.
inline constexpr uint8_t kMinFrameVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 16;
/// Upper bound on one frame's payload: a batch of a million 8-dim queries
/// fits; anything bigger is a corrupt length field or an abusive peer.
inline constexpr uint32_t kMaxFramePayload = 64u << 20;

/// Message types carried in the header's type byte.
enum class MessageType : uint8_t {
  /// Request: empty. Response: InfoResponse (wire.h).
  kInfo = 1,
  /// Request: QueryBatchRequest. Response: QueryBatchResponse — full PNN
  /// answers evaluated by the serving side.
  kQueryBatch = 2,
  /// Request: QueryBatchRequest. Response: Step1BatchResponse — Step-1
  /// candidates + distances only (the router's scatter leg).
  kStep1Batch = 3,
  /// Request: FetchRecordsRequest. Response: FetchRecordsResponse.
  kFetchRecords = 4,
  /// Request: QueryRequestBatch (typed query vocabulary, v2). Response:
  /// QueryAnswerBatch — per-request answers, malformed requests included as
  /// per-answer InvalidArgument statuses.
  kQueryRequestBatch = 5,
  /// Response-only: QueryAnswerBatch payload (v2).
  kQueryAnswerBatch = 6,
  /// Request: RangeStep1Request (v2). Response: RangeStep1Response —
  /// range-overlap candidate ids only (the router's range scatter leg).
  kRangeStep1Batch = 7,
  /// Response-only: ErrorResponse payload carrying a Status.
  kError = 255,
};

/// Lowest frame version able to carry `type`: the typed-vocabulary messages
/// need v2, everything else stays encodable as v1 so old peers interoperate.
uint8_t FrameVersionFor(MessageType type);

struct FrameHeader {
  uint8_t version = kFrameVersion;
  MessageType type = MessageType::kError;
  uint32_t payload_len = 0;
  uint32_t payload_crc = 0;
};

/// One encoded frame: header + payload, ready to write to a socket.
std::vector<uint8_t> EncodeFrame(MessageType type,
                                 std::span<const uint8_t> payload);

/// Parses and validates the 16 header bytes (magic, version, flags, length
/// bound). The payload CRC is NOT checked here — the caller reads
/// `payload_len` more bytes and calls VerifyFramePayload.
Result<FrameHeader> DecodeFrameHeader(std::span<const uint8_t> header);

/// Checks `payload` against the header's CRC-32C.
Status VerifyFramePayload(const FrameHeader& header,
                          std::span<const uint8_t> payload);

}  // namespace pvdb::net

#endif  // PVDB_NET_FRAME_H_
