// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Open-loop load generator for the framed query protocol. Arrivals follow
// a precomputed schedule (Poisson by default, optionally heavy-tailed
// Pareto inter-arrivals) fixed BEFORE the run starts, and every request's
// latency is measured from its SCHEDULED send time — so a stalled server
// inflates the tail instead of silently slowing the request rate
// (coordinated omission, the classic closed-loop benchmark lie).
//
// The generator drives one connection synchronously: a request whose
// scheduled slot arrives while the previous one is still in flight is sent
// late, and the queueing delay it suffered is charged to its latency.
// Microsecond latencies land in a PR-6 HistogramData for p50/p99/p999
// extraction; per-answer failures are counted, not retried (an open-loop
// client does not resubmit — the next arrival is already scheduled).

#ifndef PVDB_NET_LOADGEN_H_
#define PVDB_NET_LOADGEN_H_

#include <cstdint>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/status.h"
#include "src/geom/point.h"

namespace pvdb::net {

struct LoadGenOptions {
  /// Target offered load in requests/second. Must be > 0.
  double target_qps = 100.0;
  /// Number of requests to schedule. Must be >= 1.
  int total_requests = 1000;
  /// Queries per request frame. Must be >= 1.
  int batch_size = 1;
  /// false: exponential inter-arrivals (Poisson process). true: Pareto
  /// inter-arrivals with shape `pareto_alpha` and the same mean — bursty
  /// heavy-tailed arrivals that stress queueing at the same offered load.
  bool heavy_tailed = false;
  /// Pareto shape; must be > 1 (finite mean). 1.5 is a hard burst profile.
  double pareto_alpha = 1.5;
  /// Per-request deadline handed to the frame client. Must be > 0.
  double deadline_ms = 1000.0;
  /// Seed for the arrival schedule and query sampling.
  uint64_t seed = 42;
};

/// InvalidArgument naming the offending field, or OK.
Status ValidateLoadGenOptions(const LoadGenOptions& options);

struct LoadGenReport {
  /// Requests sent / answered OK / failed (transport or per-answer error).
  int64_t sent = 0;
  int64_t ok = 0;
  int64_t failed = 0;
  /// Individual query answers with non-OK status inside OK responses.
  int64_t answer_errors = 0;
  /// Wall-clock of the whole run, first scheduled arrival to last response.
  double wall_s = 0.0;
  /// Achieved request rate (sent / wall_s).
  double achieved_qps = 0.0;
  /// Per-request latency in MICROSECONDS from scheduled arrival to
  /// response decode (includes any open-loop queueing delay).
  HistogramData latency_us;
};

/// Runs the open-loop schedule against the query endpoint at
/// 127.0.0.1:<port>, sampling query points uniformly from `queries`
/// (cycled in schedule order). Transport loss mid-run reconnects and keeps
/// going — dropped requests count as failed, the schedule never pauses.
Result<LoadGenReport> RunLoadGen(int port,
                                 const std::vector<geom::Point>& queries,
                                 const LoadGenOptions& options);

}  // namespace pvdb::net

#endif  // PVDB_NET_LOADGEN_H_
