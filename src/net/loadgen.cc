// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/net/loadgen.h"

#include <chrono>
#include <cmath>
#include <thread>
#include <utility>

#include "src/common/random.h"
#include "src/net/client.h"
#include "src/net/wire.h"

namespace pvdb::net {

namespace {

using Clock = std::chrono::steady_clock;

/// The full arrival offset schedule (seconds from run start), drawn before
/// the run so server behavior cannot perturb the offered load.
std::vector<double> DrawSchedule(const LoadGenOptions& options, Rng* rng) {
  std::vector<double> offsets(static_cast<size_t>(options.total_requests));
  const double mean_gap = 1.0 / options.target_qps;
  double t = 0.0;
  for (double& offset : offsets) {
    double gap = 0.0;
    if (options.heavy_tailed) {
      // Pareto with shape a, scaled so the mean a*m/(a-1) equals mean_gap.
      const double a = options.pareto_alpha;
      const double scale = mean_gap * (a - 1.0) / a;
      const double u = 1.0 - rng->NextDouble();  // (0, 1]
      gap = scale / std::pow(u, 1.0 / a);
    } else {
      // Exponential: -mean * ln(U), U in (0, 1].
      gap = -mean_gap * std::log(1.0 - rng->NextDouble());
    }
    t += gap;
    offset = t;
  }
  return offsets;
}

}  // namespace

Status ValidateLoadGenOptions(const LoadGenOptions& options) {
  if (!(options.target_qps > 0.0)) {
    return Status::InvalidArgument("loadgen target_qps must be > 0, got " +
                                   std::to_string(options.target_qps));
  }
  if (options.total_requests < 1) {
    return Status::InvalidArgument(
        "loadgen total_requests must be >= 1, got " +
        std::to_string(options.total_requests));
  }
  if (options.batch_size < 1) {
    return Status::InvalidArgument("loadgen batch_size must be >= 1, got " +
                                   std::to_string(options.batch_size));
  }
  if (options.heavy_tailed && !(options.pareto_alpha > 1.0)) {
    return Status::InvalidArgument(
        "loadgen pareto_alpha must be > 1 (finite mean), got " +
        std::to_string(options.pareto_alpha));
  }
  if (!(options.deadline_ms > 0.0)) {
    return Status::InvalidArgument("loadgen deadline_ms must be > 0, got " +
                                   std::to_string(options.deadline_ms));
  }
  return Status::OK();
}

Result<LoadGenReport> RunLoadGen(int port,
                                 const std::vector<geom::Point>& queries,
                                 const LoadGenOptions& options) {
  PVDB_RETURN_NOT_OK(ValidateLoadGenOptions(options));
  if (queries.empty()) {
    return Status::InvalidArgument("loadgen needs a non-empty query pool");
  }
  Rng rng(options.seed);
  const std::vector<double> schedule = DrawSchedule(options, &rng);

  // Pre-encode every request frame payload: the send loop must not spend
  // scheduled time on serialization.
  std::vector<std::vector<uint8_t>> payloads;
  payloads.reserve(schedule.size());
  std::vector<geom::Point> batch;
  size_t next_query = 0;
  for (size_t i = 0; i < schedule.size(); ++i) {
    batch.clear();
    for (int j = 0; j < options.batch_size; ++j) {
      batch.push_back(queries[next_query]);
      next_query = (next_query + 1) % queries.size();
    }
    payloads.push_back(EncodeQueryBatchRequest(batch));
  }

  PVDB_ASSIGN_OR_RETURN(std::unique_ptr<FrameClient> client,
                        FrameClient::Connect(port, options.deadline_ms));

  LoadGenReport report;
  const Clock::time_point start = Clock::now();
  for (size_t i = 0; i < schedule.size(); ++i) {
    const Clock::time_point scheduled =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(schedule[i]));
    // Open loop: wait out an early slot, never stretch a late one.
    std::this_thread::sleep_until(scheduled);

    report.sent++;
    if (client == nullptr) {
      auto reconnect = FrameClient::Connect(port, options.deadline_ms);
      if (!reconnect.ok()) {
        report.failed++;
        continue;
      }
      client = std::move(reconnect).value();
    }
    auto response =
        client->Call(MessageType::kQueryBatch, payloads[i],
                     options.deadline_ms);
    const Clock::time_point done = Clock::now();
    // Latency from the SCHEDULED arrival, not the actual send: queueing
    // delay behind a slow previous response is the server's fault and must
    // show up in the tail.
    const int64_t us = std::chrono::duration_cast<std::chrono::microseconds>(
                           done - scheduled)
                           .count();
    if (!response.ok()) {
      report.failed++;
      report.latency_us.Record(us);
      client.reset();  // desynced; reconnect on the next slot
      continue;
    }
    auto answers_or = DecodeQueryBatchResponse(response.value().second);
    if (!answers_or.ok()) {
      report.failed++;
      report.latency_us.Record(us);
      continue;
    }
    report.ok++;
    report.latency_us.Record(us);
    for (const WireAnswer& a : answers_or.value()) {
      if (!a.status.ok()) report.answer_errors++;
    }
  }
  report.wall_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  report.achieved_qps =
      report.wall_s > 0.0 ? static_cast<double>(report.sent) / report.wall_s
                          : 0.0;
  return report;
}

}  // namespace pvdb::net
