// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Blocking framed-protocol client with hard deadlines. Every operation —
// connect, request write, response read — polls with the remaining slice
// of the caller's deadline, so a dead or wedged server yields
// kUnavailable after deadline_ms, never a hang. A kError response frame
// decodes back into the Status the server raised.

#ifndef PVDB_NET_CLIENT_H_
#define PVDB_NET_CLIENT_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/net/frame.h"

namespace pvdb::net {

class FrameClient {
 public:
  /// Connects to 127.0.0.1:<port> (loopback only — matching the server)
  /// within `deadline_ms`. kUnavailable on refusal or timeout.
  static Result<std::unique_ptr<FrameClient>> Connect(int port,
                                                      double deadline_ms);

  ~FrameClient();

  FrameClient(const FrameClient&) = delete;
  FrameClient& operator=(const FrameClient&) = delete;

  /// One request/response exchange within `deadline_ms`. Returns the
  /// response (type, payload); a kError frame is decoded and returned as
  /// its carried Status. Timeouts and connection loss are kUnavailable;
  /// after either, the stream is desynced and every further Call fails.
  Result<std::pair<MessageType, std::vector<uint8_t>>> Call(
      MessageType type, std::span<const uint8_t> payload,
      double deadline_ms);

 private:
  FrameClient() = default;

  Status WriteAll(std::span<const uint8_t> data, double deadline_ms);
  Status ReadExact(uint8_t* out, size_t n, double deadline_ms);

  int fd_ = -1;
  bool broken_ = false;
};

}  // namespace pvdb::net

#endif  // PVDB_NET_CLIENT_H_
