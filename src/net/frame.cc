// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/net/frame.h"

#include <cstring>

#include "src/common/crc32c.h"

namespace pvdb::net {

namespace {
constexpr char kMagic[4] = {'P', 'V', 'D', 'F'};
}  // namespace

uint8_t FrameVersionFor(MessageType type) {
  switch (type) {
    case MessageType::kQueryRequestBatch:
    case MessageType::kQueryAnswerBatch:
    case MessageType::kRangeStep1Batch:
      return 2;
    default:
      return 1;
  }
}

std::vector<uint8_t> EncodeFrame(MessageType type,
                                 std::span<const uint8_t> payload) {
  PVDB_CHECK(payload.size() <= kMaxFramePayload);
  std::vector<uint8_t> out(kFrameHeaderBytes + payload.size());
  std::memcpy(out.data(), kMagic, 4);
  // Stamp the lowest version able to carry this type, not kFrameVersion:
  // legacy messages stay decodable by v1 peers.
  out[4] = FrameVersionFor(type);
  out[5] = static_cast<uint8_t>(type);
  out[6] = 0;
  out[7] = 0;
  const uint32_t len = static_cast<uint32_t>(payload.size());
  const uint32_t crc = Crc32c(payload.data(), payload.size());
  std::memcpy(out.data() + 8, &len, 4);
  std::memcpy(out.data() + 12, &crc, 4);
  if (!payload.empty()) {
    std::memcpy(out.data() + kFrameHeaderBytes, payload.data(),
                payload.size());
  }
  return out;
}

Result<FrameHeader> DecodeFrameHeader(std::span<const uint8_t> header) {
  if (header.size() < kFrameHeaderBytes) {
    return Status::Corruption("frame: truncated header (" +
                              std::to_string(header.size()) + " of " +
                              std::to_string(kFrameHeaderBytes) + " bytes)");
  }
  if (std::memcmp(header.data(), kMagic, 4) != 0) {
    return Status::Corruption("frame: bad magic (not a pvdb frame)");
  }
  FrameHeader h;
  h.version = header[4];
  if (h.version < kMinFrameVersion || h.version > kFrameVersion) {
    return Status::NotSupported(
        "frame: protocol version " + std::to_string(h.version) +
        " (this build speaks versions " + std::to_string(kMinFrameVersion) +
        " through " + std::to_string(kFrameVersion) + ")");
  }
  uint16_t flags;
  std::memcpy(&flags, header.data() + 6, 2);
  if (flags != 0) {
    return Status::Corruption("frame: nonzero flags " +
                              std::to_string(flags) +
                              " (reserved through version " +
                              std::to_string(kFrameVersion) + ")");
  }
  h.type = static_cast<MessageType>(header[5]);
  if (h.version < FrameVersionFor(h.type)) {
    return Status::Corruption(
        "frame: message type " + std::to_string(header[5]) +
        " requires protocol version " +
        std::to_string(FrameVersionFor(h.type)) + ", frame claims version " +
        std::to_string(h.version));
  }
  std::memcpy(&h.payload_len, header.data() + 8, 4);
  std::memcpy(&h.payload_crc, header.data() + 12, 4);
  if (h.payload_len > kMaxFramePayload) {
    return Status::Corruption("frame: payload length " +
                              std::to_string(h.payload_len) +
                              " exceeds the " +
                              std::to_string(kMaxFramePayload) +
                              "-byte frame bound");
  }
  return h;
}

Status VerifyFramePayload(const FrameHeader& header,
                          std::span<const uint8_t> payload) {
  if (payload.size() != header.payload_len) {
    return Status::Corruption("frame: payload is " +
                              std::to_string(payload.size()) +
                              " bytes, header promised " +
                              std::to_string(header.payload_len));
  }
  const uint32_t crc = Crc32c(payload.data(), payload.size());
  if (crc != header.payload_crc) {
    return Status::Corruption("frame: payload CRC-32C mismatch (stored " +
                              std::to_string(header.payload_crc) +
                              ", computed " + std::to_string(crc) + ")");
  }
  return Status::OK();
}

}  // namespace pvdb::net
