// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/net/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "src/net/wire.h"

namespace pvdb::net {

namespace {

using Clock = std::chrono::steady_clock;

double RemainingMs(Clock::time_point deadline) {
  return std::chrono::duration<double, std::milli>(deadline - Clock::now())
      .count();
}

Status Timeout(const char* what) {
  return Status::Unavailable(std::string(what) +
                             " timed out (deadline exceeded)");
}

}  // namespace

Result<std::unique_ptr<FrameClient>> FrameClient::Connect(int port,
                                                          double deadline_ms) {
  if (port < 1 || port > 65535) {
    return Status::InvalidArgument("client port must be in [1, 65535], got " +
                                   std::to_string(port));
  }
  if (!(deadline_ms > 0.0)) {
    return Status::InvalidArgument("client deadline_ms must be > 0");
  }
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket failed: ") +
                           std::strerror(errno));
  }
  const int flags = fcntl(fd, F_GETFL, 0);
  fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) {
      const Status st = Status::Unavailable(
          "connect to 127.0.0.1:" + std::to_string(port) + " failed: " +
          std::strerror(errno));
      close(fd);
      return st;
    }
    pollfd p{fd, POLLOUT, 0};
    const int r = poll(&p, 1, static_cast<int>(deadline_ms));
    int err = 0;
    socklen_t len = sizeof(err);
    getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (r <= 0 || err != 0) {
      close(fd);
      return Status::Unavailable(
          "connect to 127.0.0.1:" + std::to_string(port) + " failed: " +
          (r <= 0 ? "deadline exceeded" : std::strerror(err)));
    }
  }
  auto client = std::unique_ptr<FrameClient>(new FrameClient());
  client->fd_ = fd;
  return client;
}

FrameClient::~FrameClient() {
  if (fd_ >= 0) close(fd_);
}

Status FrameClient::WriteAll(std::span<const uint8_t> data,
                             double deadline_ms) {
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double, std::milli>(
                             deadline_ms));
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = write(fd_, data.data() + off, data.size() - off);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) {
      return Status::Unavailable(std::string("request write failed: ") +
                                 std::strerror(errno));
    }
    const double left = RemainingMs(deadline);
    if (left <= 0.0) return Timeout("request write");
    pollfd p{fd_, POLLOUT, 0};
    if (poll(&p, 1, static_cast<int>(left) + 1) < 0) {
      return Status::Unavailable(std::string("poll failed: ") +
                                 std::strerror(errno));
    }
  }
  return Status::OK();
}

Status FrameClient::ReadExact(uint8_t* out, size_t n, double deadline_ms) {
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double, std::milli>(
                             deadline_ms));
  size_t off = 0;
  while (off < n) {
    const ssize_t r = read(fd_, out + off, n - off);
    if (r > 0) {
      off += static_cast<size_t>(r);
      continue;
    }
    if (r == 0) {
      return Status::Unavailable("connection closed by server mid-response");
    }
    if (errno != EAGAIN && errno != EWOULDBLOCK) {
      return Status::Unavailable(std::string("response read failed: ") +
                                 std::strerror(errno));
    }
    const double left = RemainingMs(deadline);
    if (left <= 0.0) return Timeout("response read");
    pollfd p{fd_, POLLIN, 0};
    if (poll(&p, 1, static_cast<int>(left) + 1) < 0) {
      return Status::Unavailable(std::string("poll failed: ") +
                                 std::strerror(errno));
    }
  }
  return Status::OK();
}

Result<std::pair<MessageType, std::vector<uint8_t>>> FrameClient::Call(
    MessageType type, std::span<const uint8_t> payload, double deadline_ms) {
  if (!(deadline_ms > 0.0)) {
    return Status::InvalidArgument("call deadline_ms must be > 0");
  }
  if (broken_) {
    return Status::Unavailable(
        "connection desynced by an earlier timeout; reconnect");
  }
  Status st = WriteAll(EncodeFrame(type, payload), deadline_ms);
  if (!st.ok()) {
    broken_ = true;
    return st;
  }
  uint8_t header_bytes[kFrameHeaderBytes];
  st = ReadExact(header_bytes, sizeof(header_bytes), deadline_ms);
  if (!st.ok()) {
    broken_ = true;
    return st;
  }
  auto header_or = DecodeFrameHeader(header_bytes);
  if (!header_or.ok()) {
    broken_ = true;
    return header_or.status();
  }
  const FrameHeader header = header_or.value();
  std::vector<uint8_t> body(header.payload_len);
  st = ReadExact(body.data(), body.size(), deadline_ms);
  if (!st.ok()) {
    broken_ = true;
    return st;
  }
  PVDB_RETURN_NOT_OK(VerifyFramePayload(header, body));
  if (header.type == MessageType::kError) {
    return DecodeErrorResponse(body);
  }
  return std::make_pair(header.type, std::move(body));
}

}  // namespace pvdb::net
