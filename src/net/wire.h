// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Message payload codecs for the framed protocol (frame.h). Each message
// is a little-endian packed payload carried inside one frame; every
// decoder is bounds-checked and returns descriptive Corruption on any
// malformed input (truncation, count/length fields walking past the
// buffer, out-of-range dimensionality), never a crash.
//
// Status values cross the wire as (code u32, message) pairs and come back
// as the same Status — which is how a shard-side error (or a router-side
// kUnavailable) reaches the client as a per-answer status instead of a
// dropped connection.

#ifndef PVDB_NET_WIRE_H_
#define PVDB_NET_WIRE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/status.h"
#include "src/geom/point.h"
#include "src/geom/rect.h"
#include "src/pv/pnnq.h"
#include "src/service/query_request.h"
#include "src/shard/router.h"
#include "src/uncertain/uncertain_object.h"

namespace pvdb::net {

/// kQueryBatch / kStep1Batch request: a batch of query points.
///   dim u32 | count u32 | count × dim f64
std::vector<uint8_t> EncodeQueryBatchRequest(
    std::span<const geom::Point> queries);
Result<std::vector<geom::Point>> DecodeQueryBatchRequest(
    std::span<const uint8_t> payload);

/// One full PNN answer on the wire (status + results; transport-side
/// latency is measured by the client, not shipped).
struct WireAnswer {
  Status status = Status::OK();
  std::vector<pv::PnnResult> results;
};

/// kQueryBatch response:
///   count u32 | per answer: status u32 | msg len u32 | msg |
///   result count u32 | results × (id u64, probability f64)
std::vector<uint8_t> EncodeQueryBatchResponse(
    std::span<const WireAnswer> answers);
Result<std::vector<WireAnswer>> DecodeQueryBatchResponse(
    std::span<const uint8_t> payload);

/// kStep1Batch response:
///   count u32 | per answer: status u32 | msg len u32 | msg |
///   candidate count u32 | candidates × (id u64, min f64, max f64)
std::vector<uint8_t> EncodeStep1BatchResponse(
    std::span<const shard::ShardStep1Answer> answers);
Result<std::vector<shard::ShardStep1Answer>> DecodeStep1BatchResponse(
    std::span<const uint8_t> payload);

/// kFetchRecords request: count u32 | count × id u64.
std::vector<uint8_t> EncodeFetchRecordsRequest(
    std::span<const uncertain::ObjectId> ids);
Result<std::vector<uncertain::ObjectId>> DecodeFetchRecordsRequest(
    std::span<const uint8_t> payload);

/// kFetchRecords response: count u32 | count × (len u32 |
/// UncertainObject::AppendTo image). Decoding re-parses each record with
/// the bounds-checked ParseFrom.
std::vector<uint8_t> EncodeFetchRecordsResponse(
    std::span<const uncertain::UncertainObject> records);
Result<std::vector<uncertain::UncertainObject>> DecodeFetchRecordsResponse(
    std::span<const uint8_t> payload);

/// kQueryRequestBatch request (frame v2): a batch of typed queries.
///   dim u32 | count u32 | per request: kind u8 | kind-specific body:
///     pnn        — point (dim × f64)
///     topk       — k u32 | point
///     threshold  — p f64 | point
///     range      — p f64 | lo point | hi point
///     trajectory — step f64 | vertex count u32 | vertices × point
/// Decoding checks structure only (bounds, known kind); semantic validity
/// (k ≥ 1, p ∈ [0,1], lo ≤ hi, step > 0) is the server-side
/// ValidateQueryRequest's job, so a malformed request reaches the engine
/// and answers per-request InvalidArgument instead of dropping the
/// connection.
std::vector<uint8_t> EncodeQueryRequestBatch(
    std::span<const service::QueryRequest> requests);
Result<std::vector<service::QueryRequest>> DecodeQueryRequestBatch(
    std::span<const uint8_t> payload);

/// kQueryAnswerBatch response (frame v2):
///   count u32 | per answer: status u32 | msg len u32 | msg | kind u8 |
///   cache_hit u8 | result count u32 | results × (id u64, probability f64) |
///   step count u32 | per step: dim u8 | point | reused u8 |
///   result count u32 | results × (id u64, probability f64)
/// Latency and stage timing are measured client-side, not shipped.
std::vector<uint8_t> EncodeQueryAnswerBatch(
    std::span<const service::QueryAnswer> answers);
Result<std::vector<service::QueryAnswer>> DecodeQueryAnswerBatch(
    std::span<const uint8_t> payload);

/// kRangeStep1Batch request (frame v2): a batch of query rectangles.
///   dim u32 | count u32 | count × (lo dim f64, hi dim f64)
/// Degenerate (lo > hi) rectangles decode structurally and are rejected by
/// server-side validation.
std::vector<uint8_t> EncodeRangeStep1Request(
    std::span<const geom::Rect> ranges);
Result<std::vector<geom::Rect>> DecodeRangeStep1Request(
    std::span<const uint8_t> payload);

/// kRangeStep1Batch response (frame v2):
///   count u32 | per answer: status u32 | msg len u32 | msg |
///   id count u32 | ids × u64
std::vector<uint8_t> EncodeRangeStep1Response(
    std::span<const shard::ShardRangeAnswer> answers);
Result<std::vector<shard::ShardRangeAnswer>> DecodeRangeStep1Response(
    std::span<const uint8_t> payload);

/// kInfo response: dim u32 | object count u64.
struct WireInfo {
  int dim = 0;
  uint64_t object_count = 0;
};
std::vector<uint8_t> EncodeInfoResponse(const WireInfo& info);
Result<WireInfo> DecodeInfoResponse(std::span<const uint8_t> payload);

/// kError payload: status code u32 | message. Decode returns the carried
/// Status itself (never OK — an OK error frame decodes as Corruption).
std::vector<uint8_t> EncodeErrorResponse(const Status& status);
Status DecodeErrorResponse(std::span<const uint8_t> payload);

}  // namespace pvdb::net

#endif  // PVDB_NET_WIRE_H_
