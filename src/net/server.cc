// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/net/wire.h"

namespace pvdb::net {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

void SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

Status ValidateTcpServerOptions(const TcpServerOptions& options) {
  if (options.port < 0 || options.port > 65535) {
    return Status::InvalidArgument("server port must be in [0, 65535], got " +
                                   std::to_string(options.port));
  }
  if (options.max_connections < 1) {
    return Status::InvalidArgument(
        "server max_connections must be >= 1, got " +
        std::to_string(options.max_connections));
  }
  return Status::OK();
}

Result<std::unique_ptr<TcpServer>> TcpServer::Start(
    const TcpServerOptions& options, FrameHandler handler,
    MetricsProvider metrics) {
  PVDB_RETURN_NOT_OK(ValidateTcpServerOptions(options));
  if (handler == nullptr) {
    return Status::InvalidArgument("server needs a frame handler");
  }
  auto server = std::unique_ptr<TcpServer>(new TcpServer());
  server->handler_ = std::move(handler);
  server->metrics_ = std::move(metrics);
  server->max_connections_ = options.max_connections;

  server->listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (server->listen_fd_ < 0) return Errno("socket failed");
  const int one = 1;
  setsockopt(server->listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options.port));
  if (bind(server->listen_fd_, reinterpret_cast<sockaddr*>(&addr),
           sizeof(addr)) != 0) {
    return Errno("bind to 127.0.0.1:" + std::to_string(options.port) +
                 " failed");
  }
  if (listen(server->listen_fd_, 64) != 0) return Errno("listen failed");
  socklen_t len = sizeof(addr);
  if (getsockname(server->listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                  &len) != 0) {
    return Errno("getsockname failed");
  }
  server->port_ = ntohs(addr.sin_port);
  SetNonBlocking(server->listen_fd_);
  if (pipe(server->wake_fds_) != 0) return Errno("pipe failed");
  SetNonBlocking(server->wake_fds_[0]);
  server->thread_ = std::thread([s = server.get()] { s->Loop(); });
  return server;
}

TcpServer::~TcpServer() { Stop(); }

void TcpServer::Stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  const uint8_t b = 1;
  // Best-effort wake; the loop also times out of poll on its own.
  [[maybe_unused]] ssize_t n = write(wake_fds_[1], &b, 1);
  if (thread_.joinable()) thread_.join();
  for (Connection& c : conns_) close(c.fd);
  conns_.clear();
  if (listen_fd_ >= 0) close(listen_fd_);
  if (wake_fds_[0] >= 0) close(wake_fds_[0]);
  if (wake_fds_[1] >= 0) close(wake_fds_[1]);
  listen_fd_ = wake_fds_[0] = wake_fds_[1] = -1;
}

void TcpServer::Loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    std::vector<pollfd> fds;
    fds.push_back({listen_fd_, POLLIN, 0});
    fds.push_back({wake_fds_[0], POLLIN, 0});
    for (const Connection& c : conns_) fds.push_back({c.fd, POLLIN, 0});
    const int ready = poll(fds.data(), fds.size(), /*timeout_ms=*/200);
    if (stopping_.load(std::memory_order_acquire)) return;
    if (ready <= 0) continue;

    if (fds[0].revents & POLLIN) {
      for (;;) {
        const int fd = accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;
        if (conns_.size() >= static_cast<size_t>(max_connections_)) {
          close(fd);
          continue;
        }
        SetNonBlocking(fd);
        const int one = 1;
        setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        conns_.push_back({fd, {}});
      }
    }
    // Walk backwards so closing connection i cannot shift unvisited slots.
    for (size_t i = conns_.size(); i-- > 0;) {
      // fds: [listen, wake, conns...]; the conns_ vector may have grown
      // after the poll, so only slots that were polled are checked.
      const size_t slot = 2 + i;
      if (slot >= fds.size()) continue;
      if (fds[slot].revents & (POLLIN | POLLERR | POLLHUP)) {
        if (!ServeConnection(i)) {
          close(conns_[i].fd);
          conns_.erase(conns_.begin() + static_cast<long>(i));
        }
      }
    }
  }
}

bool TcpServer::ServeConnection(size_t index) {
  Connection& c = conns_[index];
  uint8_t chunk[16384];
  for (;;) {
    const ssize_t n = read(c.fd, chunk, sizeof(chunk));
    if (n > 0) {
      c.buf.insert(c.buf.end(), chunk, chunk + n);
      continue;
    }
    if (n == 0) return false;  // peer closed
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    return false;
  }
  // Serve every complete request currently buffered.
  for (;;) {
    if (conns_[index].buf.size() < 4) return true;
    const uint8_t* head = conns_[index].buf.data();
    if (std::memcmp(head, "PVDF", 4) == 0) {
      const size_t before = conns_[index].buf.size();
      if (!HandleFrame(index)) return false;
      if (conns_[index].buf.size() == before) return true;  // incomplete
    } else if (std::memcmp(head, "GET ", 4) == 0) {
      return HandleHttp(index);
    } else {
      const auto err = EncodeErrorResponse(Status::InvalidArgument(
          "unrecognized protocol preamble (expected a pvdb frame or HTTP "
          "GET)"));
      WriteAll(conns_[index].fd, EncodeFrame(MessageType::kError, err));
      return false;
    }
  }
}

bool TcpServer::HandleFrame(size_t index) {
  Connection& c = conns_[index];
  if (c.buf.size() < kFrameHeaderBytes) return true;
  auto header_or = DecodeFrameHeader(
      std::span<const uint8_t>(c.buf.data(), kFrameHeaderBytes));
  if (!header_or.ok()) {
    // A malformed header leaves no way to resync the stream: report and
    // drop the connection.
    const auto err = EncodeErrorResponse(header_or.status());
    WriteAll(c.fd, EncodeFrame(MessageType::kError, err));
    return false;
  }
  const FrameHeader header = header_or.value();
  if (c.buf.size() < kFrameHeaderBytes + header.payload_len) return true;
  const std::span<const uint8_t> payload(c.buf.data() + kFrameHeaderBytes,
                                         header.payload_len);
  std::vector<uint8_t> response;
  const Status crc = VerifyFramePayload(header, payload);
  if (!crc.ok()) {
    response = EncodeFrame(MessageType::kError, EncodeErrorResponse(crc));
  } else {
    auto result = handler_(header.type, payload);
    if (result.ok()) {
      response = EncodeFrame(result.value().first, result.value().second);
    } else {
      response = EncodeFrame(MessageType::kError,
                             EncodeErrorResponse(result.status()));
    }
  }
  c.buf.erase(c.buf.begin(),
              c.buf.begin() +
                  static_cast<long>(kFrameHeaderBytes + header.payload_len));
  // A bad CRC is a transport fault (bit flip, desynced peer): answer, then
  // close — the stream cannot be trusted for framing anymore.
  if (!WriteAll(c.fd, response)) return false;
  return crc.ok();
}

bool TcpServer::HandleHttp(size_t index) {
  Connection& c = conns_[index];
  const std::string req(reinterpret_cast<const char*>(c.buf.data()),
                        c.buf.size());
  if (req.find("\r\n\r\n") == std::string::npos) {
    return req.size() <= 8192;  // keep reading, bounded
  }
  std::string body, status_line = "HTTP/1.1 404 Not Found";
  const bool is_metrics = req.rfind("GET /metrics", 0) == 0;
  if (is_metrics && metrics_ != nullptr) {
    body = metrics_();
    status_line = "HTTP/1.1 200 OK";
  } else {
    body = "not found\n";
  }
  std::string resp = status_line +
                     "\r\nContent-Type: text/plain; version=0.0.4" +
                     "\r\nContent-Length: " + std::to_string(body.size()) +
                     "\r\nConnection: close\r\n\r\n" + body;
  WriteAll(c.fd, std::span<const uint8_t>(
                     reinterpret_cast<const uint8_t*>(resp.data()),
                     resp.size()));
  return false;  // HTTP: one response per connection
}

bool TcpServer::WriteAll(int fd, std::span<const uint8_t> data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = write(fd, data.data() + off, data.size() - off);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd p{fd, POLLOUT, 0};
      if (poll(&p, 1, /*timeout_ms=*/1000) <= 0) return false;
      continue;
    }
    return false;
  }
  return true;
}

}  // namespace pvdb::net
