// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/net/wire.h"

#include <cstring>

namespace pvdb::net {

namespace {

/// Batch-size sanity bounds: counts above these are corrupt length fields
/// (the 64 MiB frame bound could never carry them anyway).
constexpr uint32_t kMaxBatch = 1u << 20;
constexpr uint32_t kMaxCandidates = 16u << 20;
constexpr uint32_t kMaxStatusMsg = 64u << 10;

void AppendU8(std::vector<uint8_t>* out, uint8_t v) { out->push_back(v); }

void AppendU32(std::vector<uint8_t>* out, uint32_t v) {
  const auto* b = reinterpret_cast<const uint8_t*>(&v);
  out->insert(out->end(), b, b + sizeof(v));
}

void AppendU64(std::vector<uint8_t>* out, uint64_t v) {
  const auto* b = reinterpret_cast<const uint8_t*>(&v);
  out->insert(out->end(), b, b + sizeof(v));
}

void AppendF64(std::vector<uint8_t>* out, double v) {
  const auto* b = reinterpret_cast<const uint8_t*>(&v);
  out->insert(out->end(), b, b + sizeof(v));
}

void AppendStatus(std::vector<uint8_t>* out, const Status& st) {
  AppendU32(out, static_cast<uint32_t>(st.code()));
  AppendU32(out, static_cast<uint32_t>(st.message().size()));
  out->insert(out->end(), st.message().begin(), st.message().end());
}

/// Bounds-checked little-endian payload reader (Corruption on truncation).
class Reader {
 public:
  explicit Reader(std::span<const uint8_t> data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }

  Status ReadU8(uint8_t* v) { return ReadRaw(v); }
  Status ReadU32(uint32_t* v) { return ReadRaw(v); }
  Status ReadU64(uint64_t* v) { return ReadRaw(v); }
  Status ReadF64(double* v) { return ReadRaw(v); }

  Status ReadString(size_t n, std::string* out) {
    if (remaining() < n) return Truncated();
    out->assign(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return Status::OK();
  }

  Status ReadSpan(size_t n, std::span<const uint8_t>* out) {
    if (remaining() < n) return Truncated();
    *out = data_.subspan(pos_, n);
    pos_ += n;
    return Status::OK();
  }

  Status ReadStatus(Status* out) {
    uint32_t code = 0, len = 0;
    PVDB_RETURN_NOT_OK(ReadU32(&code));
    PVDB_RETURN_NOT_OK(ReadU32(&len));
    if (code > static_cast<uint32_t>(StatusCode::kUnavailable)) {
      return Status::Corruption("wire: unknown status code " +
                                std::to_string(code));
    }
    if (len > kMaxStatusMsg) {
      return Status::Corruption("wire: status message length " +
                                std::to_string(len) + " implausible");
    }
    std::string msg;
    PVDB_RETURN_NOT_OK(ReadString(len, &msg));
    *out = Status(static_cast<StatusCode>(code), std::move(msg));
    return Status::OK();
  }

  Status Done() const {
    if (remaining() != 0) {
      return Status::Corruption("wire: " + std::to_string(remaining()) +
                                " trailing bytes after message");
    }
    return Status::OK();
  }

 private:
  template <typename T>
  Status ReadRaw(T* v) {
    if (remaining() < sizeof(T)) return Truncated();
    std::memcpy(v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return Status::OK();
  }

  Status Truncated() const {
    return Status::Corruption("wire: message truncated at offset " +
                              std::to_string(pos_) + " of " +
                              std::to_string(data_.size()));
  }

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

}  // namespace

std::vector<uint8_t> EncodeQueryBatchRequest(
    std::span<const geom::Point> queries) {
  std::vector<uint8_t> out;
  const int dim = queries.empty() ? 1 : queries[0].dim();
  AppendU32(&out, static_cast<uint32_t>(dim));
  AppendU32(&out, static_cast<uint32_t>(queries.size()));
  for (const geom::Point& q : queries) {
    PVDB_CHECK(q.dim() == dim);
    for (int i = 0; i < dim; ++i) AppendF64(&out, q[i]);
  }
  return out;
}

Result<std::vector<geom::Point>> DecodeQueryBatchRequest(
    std::span<const uint8_t> payload) {
  Reader r(payload);
  uint32_t dim = 0, count = 0;
  PVDB_RETURN_NOT_OK(r.ReadU32(&dim));
  PVDB_RETURN_NOT_OK(r.ReadU32(&count));
  if (dim < 1 || dim > static_cast<uint32_t>(geom::kMaxDim)) {
    return Status::Corruption("wire: query dim " + std::to_string(dim) +
                              " out of range [1, " +
                              std::to_string(geom::kMaxDim) + "]");
  }
  if (count > kMaxBatch) {
    return Status::Corruption("wire: query batch count " +
                              std::to_string(count) + " exceeds " +
                              std::to_string(kMaxBatch));
  }
  std::vector<geom::Point> out;
  out.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    geom::Point p(static_cast<int>(dim));
    for (uint32_t d = 0; d < dim; ++d) {
      PVDB_RETURN_NOT_OK(r.ReadF64(&p[static_cast<int>(d)]));
    }
    out.push_back(std::move(p));
  }
  PVDB_RETURN_NOT_OK(r.Done());
  return out;
}

std::vector<uint8_t> EncodeQueryBatchResponse(
    std::span<const WireAnswer> answers) {
  std::vector<uint8_t> out;
  AppendU32(&out, static_cast<uint32_t>(answers.size()));
  for (const WireAnswer& a : answers) {
    AppendStatus(&out, a.status);
    AppendU32(&out, static_cast<uint32_t>(a.results.size()));
    for (const pv::PnnResult& r : a.results) {
      AppendU64(&out, r.id);
      AppendF64(&out, r.probability);
    }
  }
  return out;
}

Result<std::vector<WireAnswer>> DecodeQueryBatchResponse(
    std::span<const uint8_t> payload) {
  Reader r(payload);
  uint32_t count = 0;
  PVDB_RETURN_NOT_OK(r.ReadU32(&count));
  if (count > kMaxBatch) {
    return Status::Corruption("wire: answer count " + std::to_string(count) +
                              " exceeds " + std::to_string(kMaxBatch));
  }
  std::vector<WireAnswer> out(count);
  for (uint32_t i = 0; i < count; ++i) {
    PVDB_RETURN_NOT_OK(r.ReadStatus(&out[i].status));
    uint32_t n = 0;
    PVDB_RETURN_NOT_OK(r.ReadU32(&n));
    if (static_cast<size_t>(n) * 16 > r.remaining()) {
      return Status::Corruption(
          "wire: answer " + std::to_string(i) + " claims " +
          std::to_string(n) + " results beyond the payload");
    }
    out[i].results.resize(n);
    for (uint32_t j = 0; j < n; ++j) {
      PVDB_RETURN_NOT_OK(r.ReadU64(&out[i].results[j].id));
      PVDB_RETURN_NOT_OK(r.ReadF64(&out[i].results[j].probability));
    }
  }
  PVDB_RETURN_NOT_OK(r.Done());
  return out;
}

std::vector<uint8_t> EncodeStep1BatchResponse(
    std::span<const shard::ShardStep1Answer> answers) {
  std::vector<uint8_t> out;
  AppendU32(&out, static_cast<uint32_t>(answers.size()));
  for (const shard::ShardStep1Answer& a : answers) {
    AppendStatus(&out, a.status);
    AppendU32(&out, static_cast<uint32_t>(a.candidates.size()));
    for (const shard::ShardCandidate& c : a.candidates) {
      AppendU64(&out, c.id);
      AppendF64(&out, c.min_dist_sq);
      AppendF64(&out, c.max_dist_sq);
    }
  }
  return out;
}

Result<std::vector<shard::ShardStep1Answer>> DecodeStep1BatchResponse(
    std::span<const uint8_t> payload) {
  Reader r(payload);
  uint32_t count = 0;
  PVDB_RETURN_NOT_OK(r.ReadU32(&count));
  if (count > kMaxBatch) {
    return Status::Corruption("wire: step1 answer count " +
                              std::to_string(count) + " exceeds " +
                              std::to_string(kMaxBatch));
  }
  std::vector<shard::ShardStep1Answer> out(count);
  for (uint32_t i = 0; i < count; ++i) {
    PVDB_RETURN_NOT_OK(r.ReadStatus(&out[i].status));
    uint32_t n = 0;
    PVDB_RETURN_NOT_OK(r.ReadU32(&n));
    if (n > kMaxCandidates ||
        static_cast<size_t>(n) * 24 > r.remaining()) {
      return Status::Corruption(
          "wire: step1 answer " + std::to_string(i) + " claims " +
          std::to_string(n) + " candidates beyond the payload");
    }
    out[i].candidates.resize(n);
    for (uint32_t j = 0; j < n; ++j) {
      shard::ShardCandidate& c = out[i].candidates[j];
      PVDB_RETURN_NOT_OK(r.ReadU64(&c.id));
      PVDB_RETURN_NOT_OK(r.ReadF64(&c.min_dist_sq));
      PVDB_RETURN_NOT_OK(r.ReadF64(&c.max_dist_sq));
    }
  }
  PVDB_RETURN_NOT_OK(r.Done());
  return out;
}

namespace {

/// The dimensionality of a request's geometry (0 when it has none, e.g. an
/// empty polyline).
int QueryRequestDim(const service::QueryRequest& q) {
  switch (q.kind) {
    case service::QueryKind::kRangeProb:
      return q.rect.dim();
    case service::QueryKind::kTrajectoryPnn:
      return q.polyline.empty() ? 0 : q.polyline[0].dim();
    default:
      return q.point.dim();
  }
}

}  // namespace

std::vector<uint8_t> EncodeQueryRequestBatch(
    std::span<const service::QueryRequest> requests) {
  std::vector<uint8_t> out;
  int dim = 1;
  for (const service::QueryRequest& q : requests) {
    const int d = QueryRequestDim(q);
    if (d > 0) {
      dim = d;
      break;
    }
  }
  AppendU32(&out, static_cast<uint32_t>(dim));
  AppendU32(&out, static_cast<uint32_t>(requests.size()));
  const auto append_point = [&out, dim](const geom::Point& p) {
    PVDB_CHECK(p.dim() == dim);
    for (int i = 0; i < dim; ++i) AppendF64(&out, p[i]);
  };
  for (const service::QueryRequest& q : requests) {
    AppendU8(&out, static_cast<uint8_t>(q.kind));
    switch (q.kind) {
      case service::QueryKind::kPnn:
        append_point(q.point);
        break;
      case service::QueryKind::kTopKByProb:
        AppendU32(&out, q.k);
        append_point(q.point);
        break;
      case service::QueryKind::kThresholdNN:
        AppendF64(&out, q.probability);
        append_point(q.point);
        break;
      case service::QueryKind::kRangeProb:
        AppendF64(&out, q.probability);
        PVDB_CHECK(q.rect.dim() == dim);
        for (int i = 0; i < dim; ++i) AppendF64(&out, q.rect.lo(i));
        for (int i = 0; i < dim; ++i) AppendF64(&out, q.rect.hi(i));
        break;
      case service::QueryKind::kTrajectoryPnn:
        AppendF64(&out, q.step);
        AppendU32(&out, static_cast<uint32_t>(q.polyline.size()));
        for (const geom::Point& v : q.polyline) append_point(v);
        break;
    }
  }
  return out;
}

Result<std::vector<service::QueryRequest>> DecodeQueryRequestBatch(
    std::span<const uint8_t> payload) {
  Reader r(payload);
  uint32_t dim = 0, count = 0;
  PVDB_RETURN_NOT_OK(r.ReadU32(&dim));
  PVDB_RETURN_NOT_OK(r.ReadU32(&count));
  if (dim < 1 || dim > static_cast<uint32_t>(geom::kMaxDim)) {
    return Status::Corruption("wire: request dim " + std::to_string(dim) +
                              " out of range [1, " +
                              std::to_string(geom::kMaxDim) + "]");
  }
  if (count > kMaxBatch) {
    return Status::Corruption("wire: request batch count " +
                              std::to_string(count) + " exceeds " +
                              std::to_string(kMaxBatch));
  }
  const auto read_point = [&r, dim](geom::Point* p) -> Status {
    for (uint32_t d = 0; d < dim; ++d) {
      PVDB_RETURN_NOT_OK(r.ReadF64(&(*p)[static_cast<int>(d)]));
    }
    return Status::OK();
  };
  std::vector<service::QueryRequest> out;
  out.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint8_t kind = 0;
    PVDB_RETURN_NOT_OK(r.ReadU8(&kind));
    if (kind < static_cast<uint8_t>(service::QueryKind::kPnn) ||
        kind > static_cast<uint8_t>(service::QueryKind::kTrajectoryPnn)) {
      return Status::Corruption("wire: request " + std::to_string(i) +
                                " has unknown query kind " +
                                std::to_string(kind));
    }
    service::QueryRequest q;
    q.kind = static_cast<service::QueryKind>(kind);
    switch (q.kind) {
      case service::QueryKind::kPnn:
        q.point = geom::Point(static_cast<int>(dim));
        PVDB_RETURN_NOT_OK(read_point(&q.point));
        break;
      case service::QueryKind::kTopKByProb:
        PVDB_RETURN_NOT_OK(r.ReadU32(&q.k));
        q.point = geom::Point(static_cast<int>(dim));
        PVDB_RETURN_NOT_OK(read_point(&q.point));
        break;
      case service::QueryKind::kThresholdNN:
        PVDB_RETURN_NOT_OK(r.ReadF64(&q.probability));
        q.point = geom::Point(static_cast<int>(dim));
        PVDB_RETURN_NOT_OK(read_point(&q.point));
        break;
      case service::QueryKind::kRangeProb: {
        PVDB_RETURN_NOT_OK(r.ReadF64(&q.probability));
        // Built component-wise: a malformed lo > hi rectangle must decode
        // (the Rect corner constructor asserts the invariant) so that
        // server-side validation can answer it InvalidArgument.
        geom::Rect rect(static_cast<int>(dim));
        for (uint32_t d = 0; d < dim; ++d) {
          double v = 0.0;
          PVDB_RETURN_NOT_OK(r.ReadF64(&v));
          rect.set_lo(static_cast<int>(d), v);
        }
        for (uint32_t d = 0; d < dim; ++d) {
          double v = 0.0;
          PVDB_RETURN_NOT_OK(r.ReadF64(&v));
          rect.set_hi(static_cast<int>(d), v);
        }
        q.rect = rect;
        break;
      }
      case service::QueryKind::kTrajectoryPnn: {
        PVDB_RETURN_NOT_OK(r.ReadF64(&q.step));
        uint32_t nverts = 0;
        PVDB_RETURN_NOT_OK(r.ReadU32(&nverts));
        if (nverts > kMaxBatch ||
            static_cast<size_t>(nverts) * dim * 8 > r.remaining()) {
          return Status::Corruption(
              "wire: request " + std::to_string(i) + " claims " +
              std::to_string(nverts) + " polyline vertices beyond the payload");
        }
        q.polyline.reserve(nverts);
        for (uint32_t v = 0; v < nverts; ++v) {
          geom::Point p(static_cast<int>(dim));
          PVDB_RETURN_NOT_OK(read_point(&p));
          q.polyline.push_back(std::move(p));
        }
        break;
      }
    }
    out.push_back(std::move(q));
  }
  PVDB_RETURN_NOT_OK(r.Done());
  return out;
}

std::vector<uint8_t> EncodeQueryAnswerBatch(
    std::span<const service::QueryAnswer> answers) {
  std::vector<uint8_t> out;
  AppendU32(&out, static_cast<uint32_t>(answers.size()));
  for (const service::QueryAnswer& a : answers) {
    AppendStatus(&out, a.status);
    AppendU8(&out, static_cast<uint8_t>(a.kind));
    AppendU8(&out, a.cache_hit ? 1 : 0);
    AppendU32(&out, static_cast<uint32_t>(a.results.size()));
    for (const pv::PnnResult& res : a.results) {
      AppendU64(&out, res.id);
      AppendF64(&out, res.probability);
    }
    AppendU32(&out, static_cast<uint32_t>(a.steps.size()));
    for (const service::TrajectoryStepAnswer& step : a.steps) {
      AppendU8(&out, static_cast<uint8_t>(step.point.dim()));
      for (int d = 0; d < step.point.dim(); ++d) {
        AppendF64(&out, step.point[d]);
      }
      AppendU8(&out, step.reused_step1 ? 1 : 0);
      AppendU32(&out, static_cast<uint32_t>(step.results.size()));
      for (const pv::PnnResult& res : step.results) {
        AppendU64(&out, res.id);
        AppendF64(&out, res.probability);
      }
    }
  }
  return out;
}

Result<std::vector<service::QueryAnswer>> DecodeQueryAnswerBatch(
    std::span<const uint8_t> payload) {
  Reader r(payload);
  uint32_t count = 0;
  PVDB_RETURN_NOT_OK(r.ReadU32(&count));
  if (count > kMaxBatch) {
    return Status::Corruption("wire: answer count " + std::to_string(count) +
                              " exceeds " + std::to_string(kMaxBatch));
  }
  const auto read_results =
      [&r](std::vector<pv::PnnResult>* results) -> Status {
    uint32_t n = 0;
    PVDB_RETURN_NOT_OK(r.ReadU32(&n));
    if (static_cast<size_t>(n) * 16 > r.remaining()) {
      return Status::Corruption("wire: answer claims " + std::to_string(n) +
                                " results beyond the payload");
    }
    results->resize(n);
    for (uint32_t j = 0; j < n; ++j) {
      PVDB_RETURN_NOT_OK(r.ReadU64(&(*results)[j].id));
      PVDB_RETURN_NOT_OK(r.ReadF64(&(*results)[j].probability));
    }
    return Status::OK();
  };
  std::vector<service::QueryAnswer> out(count);
  for (uint32_t i = 0; i < count; ++i) {
    PVDB_RETURN_NOT_OK(r.ReadStatus(&out[i].status));
    uint8_t kind = 0, cache_hit = 0;
    PVDB_RETURN_NOT_OK(r.ReadU8(&kind));
    if (kind < static_cast<uint8_t>(service::QueryKind::kPnn) ||
        kind > static_cast<uint8_t>(service::QueryKind::kTrajectoryPnn)) {
      return Status::Corruption("wire: answer " + std::to_string(i) +
                                " has unknown query kind " +
                                std::to_string(kind));
    }
    out[i].kind = static_cast<service::QueryKind>(kind);
    PVDB_RETURN_NOT_OK(r.ReadU8(&cache_hit));
    out[i].cache_hit = cache_hit != 0;
    PVDB_RETURN_NOT_OK(read_results(&out[i].results));
    uint32_t nsteps = 0;
    PVDB_RETURN_NOT_OK(r.ReadU32(&nsteps));
    if (nsteps > kMaxBatch) {
      return Status::Corruption("wire: answer " + std::to_string(i) +
                                " claims " + std::to_string(nsteps) +
                                " trajectory steps");
    }
    out[i].steps.resize(nsteps);
    for (uint32_t s = 0; s < nsteps; ++s) {
      uint8_t dim = 0, reused = 0;
      PVDB_RETURN_NOT_OK(r.ReadU8(&dim));
      if (dim < 1 || dim > static_cast<uint8_t>(geom::kMaxDim)) {
        return Status::Corruption("wire: trajectory step dim " +
                                  std::to_string(dim) + " out of range");
      }
      geom::Point p(dim);
      for (uint8_t d = 0; d < dim; ++d) {
        PVDB_RETURN_NOT_OK(r.ReadF64(&p[d]));
      }
      out[i].steps[s].point = std::move(p);
      PVDB_RETURN_NOT_OK(r.ReadU8(&reused));
      out[i].steps[s].reused_step1 = reused != 0;
      PVDB_RETURN_NOT_OK(read_results(&out[i].steps[s].results));
    }
  }
  PVDB_RETURN_NOT_OK(r.Done());
  return out;
}

std::vector<uint8_t> EncodeRangeStep1Request(
    std::span<const geom::Rect> ranges) {
  std::vector<uint8_t> out;
  const int dim = ranges.empty() ? 1 : ranges[0].dim();
  AppendU32(&out, static_cast<uint32_t>(dim));
  AppendU32(&out, static_cast<uint32_t>(ranges.size()));
  for (const geom::Rect& rect : ranges) {
    PVDB_CHECK(rect.dim() == dim);
    for (int i = 0; i < dim; ++i) AppendF64(&out, rect.lo(i));
    for (int i = 0; i < dim; ++i) AppendF64(&out, rect.hi(i));
  }
  return out;
}

Result<std::vector<geom::Rect>> DecodeRangeStep1Request(
    std::span<const uint8_t> payload) {
  Reader r(payload);
  uint32_t dim = 0, count = 0;
  PVDB_RETURN_NOT_OK(r.ReadU32(&dim));
  PVDB_RETURN_NOT_OK(r.ReadU32(&count));
  if (dim < 1 || dim > static_cast<uint32_t>(geom::kMaxDim)) {
    return Status::Corruption("wire: range dim " + std::to_string(dim) +
                              " out of range [1, " +
                              std::to_string(geom::kMaxDim) + "]");
  }
  if (count > kMaxBatch) {
    return Status::Corruption("wire: range batch count " +
                              std::to_string(count) + " exceeds " +
                              std::to_string(kMaxBatch));
  }
  std::vector<geom::Rect> out;
  out.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    geom::Rect rect(static_cast<int>(dim));
    for (uint32_t d = 0; d < dim; ++d) {
      double v = 0.0;
      PVDB_RETURN_NOT_OK(r.ReadF64(&v));
      rect.set_lo(static_cast<int>(d), v);
    }
    for (uint32_t d = 0; d < dim; ++d) {
      double v = 0.0;
      PVDB_RETURN_NOT_OK(r.ReadF64(&v));
      rect.set_hi(static_cast<int>(d), v);
    }
    out.push_back(rect);
  }
  PVDB_RETURN_NOT_OK(r.Done());
  return out;
}

std::vector<uint8_t> EncodeRangeStep1Response(
    std::span<const shard::ShardRangeAnswer> answers) {
  std::vector<uint8_t> out;
  AppendU32(&out, static_cast<uint32_t>(answers.size()));
  for (const shard::ShardRangeAnswer& a : answers) {
    AppendStatus(&out, a.status);
    AppendU32(&out, static_cast<uint32_t>(a.ids.size()));
    for (uncertain::ObjectId id : a.ids) AppendU64(&out, id);
  }
  return out;
}

Result<std::vector<shard::ShardRangeAnswer>> DecodeRangeStep1Response(
    std::span<const uint8_t> payload) {
  Reader r(payload);
  uint32_t count = 0;
  PVDB_RETURN_NOT_OK(r.ReadU32(&count));
  if (count > kMaxBatch) {
    return Status::Corruption("wire: range answer count " +
                              std::to_string(count) + " exceeds " +
                              std::to_string(kMaxBatch));
  }
  std::vector<shard::ShardRangeAnswer> out(count);
  for (uint32_t i = 0; i < count; ++i) {
    PVDB_RETURN_NOT_OK(r.ReadStatus(&out[i].status));
    uint32_t n = 0;
    PVDB_RETURN_NOT_OK(r.ReadU32(&n));
    if (n > kMaxCandidates || static_cast<size_t>(n) * 8 > r.remaining()) {
      return Status::Corruption(
          "wire: range answer " + std::to_string(i) + " claims " +
          std::to_string(n) + " ids beyond the payload");
    }
    out[i].ids.resize(n);
    for (uint32_t j = 0; j < n; ++j) {
      PVDB_RETURN_NOT_OK(r.ReadU64(&out[i].ids[j]));
    }
  }
  PVDB_RETURN_NOT_OK(r.Done());
  return out;
}

std::vector<uint8_t> EncodeFetchRecordsRequest(
    std::span<const uncertain::ObjectId> ids) {
  std::vector<uint8_t> out;
  AppendU32(&out, static_cast<uint32_t>(ids.size()));
  for (uncertain::ObjectId id : ids) AppendU64(&out, id);
  return out;
}

Result<std::vector<uncertain::ObjectId>> DecodeFetchRecordsRequest(
    std::span<const uint8_t> payload) {
  Reader r(payload);
  uint32_t count = 0;
  PVDB_RETURN_NOT_OK(r.ReadU32(&count));
  if (static_cast<size_t>(count) * 8 > r.remaining()) {
    return Status::Corruption("wire: record request claims " +
                              std::to_string(count) +
                              " ids beyond the payload");
  }
  std::vector<uncertain::ObjectId> out(count);
  for (uint32_t i = 0; i < count; ++i) {
    PVDB_RETURN_NOT_OK(r.ReadU64(&out[i]));
  }
  PVDB_RETURN_NOT_OK(r.Done());
  return out;
}

std::vector<uint8_t> EncodeFetchRecordsResponse(
    std::span<const uncertain::UncertainObject> records) {
  std::vector<uint8_t> out;
  AppendU32(&out, static_cast<uint32_t>(records.size()));
  std::vector<uint8_t> body;
  for (const uncertain::UncertainObject& o : records) {
    body.clear();
    o.AppendTo(&body);
    AppendU32(&out, static_cast<uint32_t>(body.size()));
    out.insert(out.end(), body.begin(), body.end());
  }
  return out;
}

Result<std::vector<uncertain::UncertainObject>> DecodeFetchRecordsResponse(
    std::span<const uint8_t> payload) {
  Reader r(payload);
  uint32_t count = 0;
  PVDB_RETURN_NOT_OK(r.ReadU32(&count));
  if (count > kMaxBatch) {
    return Status::Corruption("wire: record count " + std::to_string(count) +
                              " exceeds " + std::to_string(kMaxBatch));
  }
  std::vector<uncertain::UncertainObject> out;
  out.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t len = 0;
    PVDB_RETURN_NOT_OK(r.ReadU32(&len));
    std::span<const uint8_t> body;
    PVDB_RETURN_NOT_OK(r.ReadSpan(len, &body));
    size_t offset = 0;
    PVDB_ASSIGN_OR_RETURN(uncertain::UncertainObject o,
                          uncertain::UncertainObject::ParseFrom(body,
                                                                &offset));
    if (offset != body.size()) {
      return Status::Corruption("wire: record " + std::to_string(i) +
                                " has " +
                                std::to_string(body.size() - offset) +
                                " trailing bytes");
    }
    out.push_back(std::move(o));
  }
  PVDB_RETURN_NOT_OK(r.Done());
  return out;
}

std::vector<uint8_t> EncodeInfoResponse(const WireInfo& info) {
  std::vector<uint8_t> out;
  AppendU32(&out, static_cast<uint32_t>(info.dim));
  AppendU64(&out, info.object_count);
  return out;
}

Result<WireInfo> DecodeInfoResponse(std::span<const uint8_t> payload) {
  Reader r(payload);
  uint32_t dim = 0;
  WireInfo info;
  PVDB_RETURN_NOT_OK(r.ReadU32(&dim));
  PVDB_RETURN_NOT_OK(r.ReadU64(&info.object_count));
  PVDB_RETURN_NOT_OK(r.Done());
  if (dim < 1 || dim > static_cast<uint32_t>(geom::kMaxDim)) {
    return Status::Corruption("wire: info dim " + std::to_string(dim) +
                              " out of range");
  }
  info.dim = static_cast<int>(dim);
  return info;
}

std::vector<uint8_t> EncodeErrorResponse(const Status& status) {
  std::vector<uint8_t> out;
  AppendStatus(&out, status);
  return out;
}

Status DecodeErrorResponse(std::span<const uint8_t> payload) {
  Reader r(payload);
  Status carried;
  Status decode = r.ReadStatus(&carried);
  if (!decode.ok()) return decode;
  decode = r.Done();
  if (!decode.ok()) return decode;
  if (carried.ok()) {
    return Status::Corruption("wire: error frame carrying an OK status");
  }
  return carried;
}

}  // namespace pvdb::net
