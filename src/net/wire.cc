// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/net/wire.h"

#include <cstring>

namespace pvdb::net {

namespace {

/// Batch-size sanity bounds: counts above these are corrupt length fields
/// (the 64 MiB frame bound could never carry them anyway).
constexpr uint32_t kMaxBatch = 1u << 20;
constexpr uint32_t kMaxCandidates = 16u << 20;
constexpr uint32_t kMaxStatusMsg = 64u << 10;

void AppendU32(std::vector<uint8_t>* out, uint32_t v) {
  const auto* b = reinterpret_cast<const uint8_t*>(&v);
  out->insert(out->end(), b, b + sizeof(v));
}

void AppendU64(std::vector<uint8_t>* out, uint64_t v) {
  const auto* b = reinterpret_cast<const uint8_t*>(&v);
  out->insert(out->end(), b, b + sizeof(v));
}

void AppendF64(std::vector<uint8_t>* out, double v) {
  const auto* b = reinterpret_cast<const uint8_t*>(&v);
  out->insert(out->end(), b, b + sizeof(v));
}

void AppendStatus(std::vector<uint8_t>* out, const Status& st) {
  AppendU32(out, static_cast<uint32_t>(st.code()));
  AppendU32(out, static_cast<uint32_t>(st.message().size()));
  out->insert(out->end(), st.message().begin(), st.message().end());
}

/// Bounds-checked little-endian payload reader (Corruption on truncation).
class Reader {
 public:
  explicit Reader(std::span<const uint8_t> data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }

  Status ReadU32(uint32_t* v) { return ReadRaw(v); }
  Status ReadU64(uint64_t* v) { return ReadRaw(v); }
  Status ReadF64(double* v) { return ReadRaw(v); }

  Status ReadString(size_t n, std::string* out) {
    if (remaining() < n) return Truncated();
    out->assign(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return Status::OK();
  }

  Status ReadSpan(size_t n, std::span<const uint8_t>* out) {
    if (remaining() < n) return Truncated();
    *out = data_.subspan(pos_, n);
    pos_ += n;
    return Status::OK();
  }

  Status ReadStatus(Status* out) {
    uint32_t code = 0, len = 0;
    PVDB_RETURN_NOT_OK(ReadU32(&code));
    PVDB_RETURN_NOT_OK(ReadU32(&len));
    if (code > static_cast<uint32_t>(StatusCode::kUnavailable)) {
      return Status::Corruption("wire: unknown status code " +
                                std::to_string(code));
    }
    if (len > kMaxStatusMsg) {
      return Status::Corruption("wire: status message length " +
                                std::to_string(len) + " implausible");
    }
    std::string msg;
    PVDB_RETURN_NOT_OK(ReadString(len, &msg));
    *out = Status(static_cast<StatusCode>(code), std::move(msg));
    return Status::OK();
  }

  Status Done() const {
    if (remaining() != 0) {
      return Status::Corruption("wire: " + std::to_string(remaining()) +
                                " trailing bytes after message");
    }
    return Status::OK();
  }

 private:
  template <typename T>
  Status ReadRaw(T* v) {
    if (remaining() < sizeof(T)) return Truncated();
    std::memcpy(v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return Status::OK();
  }

  Status Truncated() const {
    return Status::Corruption("wire: message truncated at offset " +
                              std::to_string(pos_) + " of " +
                              std::to_string(data_.size()));
  }

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

}  // namespace

std::vector<uint8_t> EncodeQueryBatchRequest(
    std::span<const geom::Point> queries) {
  std::vector<uint8_t> out;
  const int dim = queries.empty() ? 1 : queries[0].dim();
  AppendU32(&out, static_cast<uint32_t>(dim));
  AppendU32(&out, static_cast<uint32_t>(queries.size()));
  for (const geom::Point& q : queries) {
    PVDB_CHECK(q.dim() == dim);
    for (int i = 0; i < dim; ++i) AppendF64(&out, q[i]);
  }
  return out;
}

Result<std::vector<geom::Point>> DecodeQueryBatchRequest(
    std::span<const uint8_t> payload) {
  Reader r(payload);
  uint32_t dim = 0, count = 0;
  PVDB_RETURN_NOT_OK(r.ReadU32(&dim));
  PVDB_RETURN_NOT_OK(r.ReadU32(&count));
  if (dim < 1 || dim > static_cast<uint32_t>(geom::kMaxDim)) {
    return Status::Corruption("wire: query dim " + std::to_string(dim) +
                              " out of range [1, " +
                              std::to_string(geom::kMaxDim) + "]");
  }
  if (count > kMaxBatch) {
    return Status::Corruption("wire: query batch count " +
                              std::to_string(count) + " exceeds " +
                              std::to_string(kMaxBatch));
  }
  std::vector<geom::Point> out;
  out.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    geom::Point p(static_cast<int>(dim));
    for (uint32_t d = 0; d < dim; ++d) {
      PVDB_RETURN_NOT_OK(r.ReadF64(&p[static_cast<int>(d)]));
    }
    out.push_back(std::move(p));
  }
  PVDB_RETURN_NOT_OK(r.Done());
  return out;
}

std::vector<uint8_t> EncodeQueryBatchResponse(
    std::span<const WireAnswer> answers) {
  std::vector<uint8_t> out;
  AppendU32(&out, static_cast<uint32_t>(answers.size()));
  for (const WireAnswer& a : answers) {
    AppendStatus(&out, a.status);
    AppendU32(&out, static_cast<uint32_t>(a.results.size()));
    for (const pv::PnnResult& r : a.results) {
      AppendU64(&out, r.id);
      AppendF64(&out, r.probability);
    }
  }
  return out;
}

Result<std::vector<WireAnswer>> DecodeQueryBatchResponse(
    std::span<const uint8_t> payload) {
  Reader r(payload);
  uint32_t count = 0;
  PVDB_RETURN_NOT_OK(r.ReadU32(&count));
  if (count > kMaxBatch) {
    return Status::Corruption("wire: answer count " + std::to_string(count) +
                              " exceeds " + std::to_string(kMaxBatch));
  }
  std::vector<WireAnswer> out(count);
  for (uint32_t i = 0; i < count; ++i) {
    PVDB_RETURN_NOT_OK(r.ReadStatus(&out[i].status));
    uint32_t n = 0;
    PVDB_RETURN_NOT_OK(r.ReadU32(&n));
    if (static_cast<size_t>(n) * 16 > r.remaining()) {
      return Status::Corruption(
          "wire: answer " + std::to_string(i) + " claims " +
          std::to_string(n) + " results beyond the payload");
    }
    out[i].results.resize(n);
    for (uint32_t j = 0; j < n; ++j) {
      PVDB_RETURN_NOT_OK(r.ReadU64(&out[i].results[j].id));
      PVDB_RETURN_NOT_OK(r.ReadF64(&out[i].results[j].probability));
    }
  }
  PVDB_RETURN_NOT_OK(r.Done());
  return out;
}

std::vector<uint8_t> EncodeStep1BatchResponse(
    std::span<const shard::ShardStep1Answer> answers) {
  std::vector<uint8_t> out;
  AppendU32(&out, static_cast<uint32_t>(answers.size()));
  for (const shard::ShardStep1Answer& a : answers) {
    AppendStatus(&out, a.status);
    AppendU32(&out, static_cast<uint32_t>(a.candidates.size()));
    for (const shard::ShardCandidate& c : a.candidates) {
      AppendU64(&out, c.id);
      AppendF64(&out, c.min_dist_sq);
      AppendF64(&out, c.max_dist_sq);
    }
  }
  return out;
}

Result<std::vector<shard::ShardStep1Answer>> DecodeStep1BatchResponse(
    std::span<const uint8_t> payload) {
  Reader r(payload);
  uint32_t count = 0;
  PVDB_RETURN_NOT_OK(r.ReadU32(&count));
  if (count > kMaxBatch) {
    return Status::Corruption("wire: step1 answer count " +
                              std::to_string(count) + " exceeds " +
                              std::to_string(kMaxBatch));
  }
  std::vector<shard::ShardStep1Answer> out(count);
  for (uint32_t i = 0; i < count; ++i) {
    PVDB_RETURN_NOT_OK(r.ReadStatus(&out[i].status));
    uint32_t n = 0;
    PVDB_RETURN_NOT_OK(r.ReadU32(&n));
    if (n > kMaxCandidates ||
        static_cast<size_t>(n) * 24 > r.remaining()) {
      return Status::Corruption(
          "wire: step1 answer " + std::to_string(i) + " claims " +
          std::to_string(n) + " candidates beyond the payload");
    }
    out[i].candidates.resize(n);
    for (uint32_t j = 0; j < n; ++j) {
      shard::ShardCandidate& c = out[i].candidates[j];
      PVDB_RETURN_NOT_OK(r.ReadU64(&c.id));
      PVDB_RETURN_NOT_OK(r.ReadF64(&c.min_dist_sq));
      PVDB_RETURN_NOT_OK(r.ReadF64(&c.max_dist_sq));
    }
  }
  PVDB_RETURN_NOT_OK(r.Done());
  return out;
}

std::vector<uint8_t> EncodeFetchRecordsRequest(
    std::span<const uncertain::ObjectId> ids) {
  std::vector<uint8_t> out;
  AppendU32(&out, static_cast<uint32_t>(ids.size()));
  for (uncertain::ObjectId id : ids) AppendU64(&out, id);
  return out;
}

Result<std::vector<uncertain::ObjectId>> DecodeFetchRecordsRequest(
    std::span<const uint8_t> payload) {
  Reader r(payload);
  uint32_t count = 0;
  PVDB_RETURN_NOT_OK(r.ReadU32(&count));
  if (static_cast<size_t>(count) * 8 > r.remaining()) {
    return Status::Corruption("wire: record request claims " +
                              std::to_string(count) +
                              " ids beyond the payload");
  }
  std::vector<uncertain::ObjectId> out(count);
  for (uint32_t i = 0; i < count; ++i) {
    PVDB_RETURN_NOT_OK(r.ReadU64(&out[i]));
  }
  PVDB_RETURN_NOT_OK(r.Done());
  return out;
}

std::vector<uint8_t> EncodeFetchRecordsResponse(
    std::span<const uncertain::UncertainObject> records) {
  std::vector<uint8_t> out;
  AppendU32(&out, static_cast<uint32_t>(records.size()));
  std::vector<uint8_t> body;
  for (const uncertain::UncertainObject& o : records) {
    body.clear();
    o.AppendTo(&body);
    AppendU32(&out, static_cast<uint32_t>(body.size()));
    out.insert(out.end(), body.begin(), body.end());
  }
  return out;
}

Result<std::vector<uncertain::UncertainObject>> DecodeFetchRecordsResponse(
    std::span<const uint8_t> payload) {
  Reader r(payload);
  uint32_t count = 0;
  PVDB_RETURN_NOT_OK(r.ReadU32(&count));
  if (count > kMaxBatch) {
    return Status::Corruption("wire: record count " + std::to_string(count) +
                              " exceeds " + std::to_string(kMaxBatch));
  }
  std::vector<uncertain::UncertainObject> out;
  out.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t len = 0;
    PVDB_RETURN_NOT_OK(r.ReadU32(&len));
    std::span<const uint8_t> body;
    PVDB_RETURN_NOT_OK(r.ReadSpan(len, &body));
    size_t offset = 0;
    PVDB_ASSIGN_OR_RETURN(uncertain::UncertainObject o,
                          uncertain::UncertainObject::ParseFrom(body,
                                                                &offset));
    if (offset != body.size()) {
      return Status::Corruption("wire: record " + std::to_string(i) +
                                " has " +
                                std::to_string(body.size() - offset) +
                                " trailing bytes");
    }
    out.push_back(std::move(o));
  }
  PVDB_RETURN_NOT_OK(r.Done());
  return out;
}

std::vector<uint8_t> EncodeInfoResponse(const WireInfo& info) {
  std::vector<uint8_t> out;
  AppendU32(&out, static_cast<uint32_t>(info.dim));
  AppendU64(&out, info.object_count);
  return out;
}

Result<WireInfo> DecodeInfoResponse(std::span<const uint8_t> payload) {
  Reader r(payload);
  uint32_t dim = 0;
  WireInfo info;
  PVDB_RETURN_NOT_OK(r.ReadU32(&dim));
  PVDB_RETURN_NOT_OK(r.ReadU64(&info.object_count));
  PVDB_RETURN_NOT_OK(r.Done());
  if (dim < 1 || dim > static_cast<uint32_t>(geom::kMaxDim)) {
    return Status::Corruption("wire: info dim " + std::to_string(dim) +
                              " out of range");
  }
  info.dim = static_cast<int>(dim);
  return info;
}

std::vector<uint8_t> EncodeErrorResponse(const Status& status) {
  std::vector<uint8_t> out;
  AppendStatus(&out, status);
  return out;
}

Status DecodeErrorResponse(std::span<const uint8_t> payload) {
  Reader r(payload);
  Status carried;
  Status decode = r.ReadStatus(&carried);
  if (!decode.ok()) return decode;
  decode = r.Done();
  if (!decode.ok()) return decode;
  if (carried.ok()) {
    return Status::Corruption("wire: error frame carrying an OK status");
  }
  return carried;
}

}  // namespace pvdb::net
