// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// A small poll()-based TCP front end for the framed protocol (frame.h).
// One background thread multiplexes a loopback listener and its accepted
// connections; requests are dispatched inline to a caller-supplied handler
// (the serving work — Step-1 pruning, Step-2 evaluation — is cheap enough
// per frame that a handler thread pool would only add latency at the
// scales this PR measures; the QueryEngine behind the handler has its own
// pool for intra-batch parallelism).
//
// The same port speaks two protocols, told apart by the first four bytes:
//   "PVDF"  — a binary frame peer (query / step1 / records RPCs);
//   "GET "  — an HTTP browser or scraper. Only `GET /metrics` is served
//             (the registry's Prometheus text export); everything else is
//             404. HTTP connections close after one response.
// A peer whose first bytes are neither gets a kError frame and the boot.
//
// Handler errors never kill the server or the connection silently: every
// failure travels back as a kError frame carrying the Status, so the
// client can map it to a per-call Status (client.h).

#ifndef PVDB_NET_SERVER_H_
#define PVDB_NET_SERVER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/net/frame.h"

namespace pvdb::net {

struct TcpServerOptions {
  /// Port to bind on 127.0.0.1; 0 picks an ephemeral port (read it back
  /// with port()). Must be in [0, 65535].
  int port = 0;
  /// Accepted connections beyond this are closed immediately.
  int max_connections = 64;
};

/// InvalidArgument naming the offending field, or OK.
Status ValidateTcpServerOptions(const TcpServerOptions& options);

/// Request dispatch: (type, payload) in, (response type, response payload)
/// out. Returning a non-OK status sends a kError frame instead.
using FrameHandler =
    std::function<Result<std::pair<MessageType, std::vector<uint8_t>>>(
        MessageType, std::span<const uint8_t>)>;

/// Body of `GET /metrics` (Prometheus text format). Empty function = 404.
using MetricsProvider = std::function<std::string()>;

class TcpServer {
 public:
  /// Binds 127.0.0.1:<port>, starts the poll loop thread.
  static Result<std::unique_ptr<TcpServer>> Start(
      const TcpServerOptions& options, FrameHandler handler,
      MetricsProvider metrics = nullptr);

  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// The bound port (the ephemeral pick when options.port was 0).
  int port() const { return port_; }

  /// Stops accepting, closes every connection, joins the thread.
  /// Idempotent.
  void Stop();

 private:
  TcpServer() = default;

  void Loop();
  /// Drains one connection's readable bytes and serves any complete
  /// requests. Returns false when the connection must close.
  bool ServeConnection(size_t index);
  bool HandleFrame(size_t index);
  bool HandleHttp(size_t index);
  /// Writes all of `data` to fd (poll-on-writable); false on peer loss.
  bool WriteAll(int fd, std::span<const uint8_t> data);

  struct Connection {
    int fd = -1;
    std::vector<uint8_t> buf;
  };

  FrameHandler handler_;
  MetricsProvider metrics_;
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // self-pipe: Stop() wakes the poll loop
  int port_ = 0;
  int max_connections_ = 0;
  std::vector<Connection> conns_;
  std::thread thread_;
  std::atomic<bool> stopping_{false};
};

}  // namespace pvdb::net

#endif  // PVDB_NET_SERVER_H_
