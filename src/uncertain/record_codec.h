// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Packed pdf-record codec for snapshot format v2. The v1 record body
// (UncertainObject::AppendTo) spends 8 bytes per coordinate and 8 per
// weight on data that is dominated by two redundancies: the uncertainty
// region usually IS the UBR the record is framed under, and synthetic /
// sampled pdfs carry the uniform weight 1/n on every instance. The packed
// form elides both and can additionally store coordinates as float32
// deltas against the region origin:
//
//   id u64 | dim u32 | n u32 | flags u32 | reserved u32
//   [region lo/hi f64 pairs]        absent when flags.kRegionIsUbr
//   positions                       n*dim f32 deltas (flags.kF32Positions)
//                                   or n*dim raw f64
//   weights                         absent (flags.kUniformWeights),
//                                   n f32 (flags.kF32Weights), or n f64
//
// kLossless keeps raw f64 positions/weights and only applies the elisions,
// so decode is bit-identical to the original object. kFloat32 quantizes:
// decoded coordinates satisfy |x' - x| <= side_d * 2^-23 (one float ulp at
// the region extent) and are clamped back into the region; weights satisfy
// |w' - w| <= w * 2^-23. Note a pdf whose weights are exactly 1/n — every
// sampled dataset in this repo — round-trips bit-identically even under
// kFloat32, because both elided fields are reconstructed, not stored.
//
// The codec is UBR-relative: the caller (pv snapshot layer) passes the
// record's UBR, which it stores separately as raw doubles.

#ifndef PVDB_UNCERTAIN_RECORD_CODEC_H_
#define PVDB_UNCERTAIN_RECORD_CODEC_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/status.h"
#include "src/uncertain/uncertain_object.h"

namespace pvdb::uncertain {

/// How Seal() stores pdf records.
enum class RecordPack : uint32_t {
  kRaw = 0,       ///< v1 body (AppendTo), no packing.
  kLossless = 1,  ///< elisions only; decode bit-identical.
  kFloat32 = 2,   ///< f32 delta coordinates + f32 weights (documented ulp
                  ///< tolerance above); elisions still apply.
};

/// Serializes `o` in the packed form, choosing elisions per `mode`.
/// `ubr` must be the UBR the enclosing record stores for this object.
/// `mode` must be kLossless or kFloat32 (kRaw is the v1 AppendTo path).
void EncodePackedObject(const UncertainObject& o, const geom::Rect& ubr,
                        RecordPack mode, std::vector<uint8_t>* out);

/// Inverse of EncodePackedObject; advances `*offset` past the consumed
/// bytes. All reads are bounds-checked — truncated or malformed input
/// returns Corruption, never crashes. `ubr` reconstructs an elided region.
Result<UncertainObject> DecodePackedObject(std::span<const uint8_t> bytes,
                                           size_t* offset,
                                           const geom::Rect& ubr);

}  // namespace pvdb::uncertain

#endif  // PVDB_UNCERTAIN_RECORD_CODEC_H_
