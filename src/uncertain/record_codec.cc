// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/uncertain/record_codec.h"

#include <algorithm>
#include <cstring>

namespace pvdb::uncertain {

namespace {

// Packed-record flag bits. Unknown bits are a decode error, so a future
// extension of this layout fails loud instead of misparsing.
constexpr uint32_t kUniformWeights = 1u << 0;  // weights elided, all 1/n
constexpr uint32_t kF32Positions = 1u << 1;    // f32 deltas from region lo
constexpr uint32_t kRegionIsUbr = 1u << 2;     // region doubles elided
constexpr uint32_t kF32Weights = 1u << 3;      // weights stored as f32
constexpr uint32_t kKnownFlags =
    kUniformWeights | kF32Positions | kRegionIsUbr | kF32Weights;

void Push(std::vector<uint8_t>* out, const void* src, size_t len) {
  const auto* b = static_cast<const uint8_t*>(src);
  out->insert(out->end(), b, b + len);
}

bool Pull(std::span<const uint8_t> bytes, size_t* offset, void* dst,
          size_t len) {
  if (len > bytes.size() - *offset || *offset > bytes.size()) return false;
  std::memcpy(dst, bytes.data() + *offset, len);
  *offset += len;
  return true;
}

}  // namespace

void EncodePackedObject(const UncertainObject& o, const geom::Rect& ubr,
                        RecordPack mode, std::vector<uint8_t>* out) {
  PVDB_CHECK(mode == RecordPack::kLossless || mode == RecordPack::kFloat32);
  const int dim = o.dim();
  const size_t n = o.pdf().size();

  uint32_t flags = 0;
  if (o.region() == ubr) flags |= kRegionIsUbr;
  if (n > 0) {
    const double uniform = 1.0 / static_cast<double>(n);
    bool all_uniform = true;
    for (const Instance& inst : o.pdf()) {
      if (inst.probability != uniform) {
        all_uniform = false;
        break;
      }
    }
    if (all_uniform) flags |= kUniformWeights;
  }
  if (mode == RecordPack::kFloat32) {
    flags |= kF32Positions;
    if ((flags & kUniformWeights) == 0) flags |= kF32Weights;
  }

  const uint64_t id = o.id();
  const uint32_t dim32 = static_cast<uint32_t>(dim);
  const uint32_t n32 = static_cast<uint32_t>(n);
  const uint32_t reserved = 0;
  Push(out, &id, sizeof(id));
  Push(out, &dim32, sizeof(dim32));
  Push(out, &n32, sizeof(n32));
  Push(out, &flags, sizeof(flags));
  Push(out, &reserved, sizeof(reserved));

  if ((flags & kRegionIsUbr) == 0) {
    for (int d = 0; d < dim; ++d) {
      const double lo = o.region().lo(d), hi = o.region().hi(d);
      Push(out, &lo, sizeof(lo));
      Push(out, &hi, sizeof(hi));
    }
  }
  if (flags & kF32Positions) {
    for (const Instance& inst : o.pdf()) {
      for (int d = 0; d < dim; ++d) {
        const float delta =
            static_cast<float>(inst.position[d] - o.region().lo(d));
        Push(out, &delta, sizeof(delta));
      }
    }
  } else {
    for (const Instance& inst : o.pdf()) {
      for (int d = 0; d < dim; ++d) {
        const double c = inst.position[d];
        Push(out, &c, sizeof(c));
      }
    }
  }
  if ((flags & kUniformWeights) == 0) {
    if (flags & kF32Weights) {
      for (const Instance& inst : o.pdf()) {
        const float w = static_cast<float>(inst.probability);
        Push(out, &w, sizeof(w));
      }
    } else {
      for (const Instance& inst : o.pdf()) {
        Push(out, &inst.probability, sizeof(inst.probability));
      }
    }
  }
}

Result<UncertainObject> DecodePackedObject(std::span<const uint8_t> bytes,
                                           size_t* offset,
                                           const geom::Rect& ubr) {
  uint64_t id;
  uint32_t dim, n, flags, reserved;
  if (!Pull(bytes, offset, &id, sizeof(id)) ||
      !Pull(bytes, offset, &dim, sizeof(dim)) ||
      !Pull(bytes, offset, &n, sizeof(n)) ||
      !Pull(bytes, offset, &flags, sizeof(flags)) ||
      !Pull(bytes, offset, &reserved, sizeof(reserved))) {
    return Status::Corruption("packed record header truncated");
  }
  if (dim < 1 || dim > static_cast<uint32_t>(geom::kMaxDim)) {
    return Status::Corruption("packed record has invalid dimension");
  }
  if ((flags & ~kKnownFlags) != 0) {
    return Status::Corruption("packed record has unknown flags " +
                              std::to_string(flags));
  }
  if (static_cast<int>(dim) != ubr.dim()) {
    return Status::Corruption("packed record dimension disagrees with UBR");
  }

  geom::Rect region(static_cast<int>(dim));
  if (flags & kRegionIsUbr) {
    // The UBR comes from raw (possibly damaged) snapshot bytes; an inverted
    // interval would make the clamp below undefined.
    for (uint32_t d = 0; d < dim; ++d) {
      const int di = static_cast<int>(d);
      if (!(ubr.lo(di) <= ubr.hi(di))) {
        return Status::Corruption("packed record UBR is inverted");
      }
    }
    region = ubr;
  } else {
    geom::Point lo(static_cast<int>(dim)), hi(static_cast<int>(dim));
    for (uint32_t d = 0; d < dim; ++d) {
      double l, h;
      if (!Pull(bytes, offset, &l, sizeof(l)) ||
          !Pull(bytes, offset, &h, sizeof(h))) {
        return Status::Corruption("packed record region truncated");
      }
      if (!(l <= h)) {
        return Status::Corruption("packed record region is inverted");
      }
      lo[static_cast<int>(d)] = l;
      hi[static_cast<int>(d)] = h;
    }
    region = geom::Rect(lo, hi);
  }

  std::vector<Instance> pdf;
  pdf.reserve(n);
  for (uint32_t k = 0; k < n; ++k) {
    geom::Point x(static_cast<int>(dim));
    if (flags & kF32Positions) {
      for (uint32_t d = 0; d < dim; ++d) {
        float delta;
        if (!Pull(bytes, offset, &delta, sizeof(delta))) {
          return Status::Corruption("packed record pdf truncated");
        }
        const int di = static_cast<int>(d);
        // The quantized coordinate may land one ulp outside the region;
        // clamp to keep the support invariant the constructor checks.
        x[di] = std::clamp(region.lo(di) + static_cast<double>(delta),
                           region.lo(di), region.hi(di));
      }
    } else {
      for (uint32_t d = 0; d < dim; ++d) {
        double c;
        if (!Pull(bytes, offset, &c, sizeof(c))) {
          return Status::Corruption("packed record pdf truncated");
        }
        x[static_cast<int>(d)] = c;
      }
    }
    pdf.push_back({x, 0.0});
  }
  if (flags & kUniformWeights) {
    const double p = n > 0 ? 1.0 / static_cast<double>(n) : 0.0;
    for (Instance& inst : pdf) inst.probability = p;
  } else if (flags & kF32Weights) {
    for (Instance& inst : pdf) {
      float w;
      if (!Pull(bytes, offset, &w, sizeof(w))) {
        return Status::Corruption("packed record weights truncated");
      }
      if (!(w >= 0.0f)) {
        return Status::Corruption("packed record weight is negative");
      }
      inst.probability = static_cast<double>(w);
    }
  } else {
    for (Instance& inst : pdf) {
      double w;
      if (!Pull(bytes, offset, &w, sizeof(w))) {
        return Status::Corruption("packed record weights truncated");
      }
      if (!(w >= 0.0)) {
        return Status::Corruption("packed record weight is negative");
      }
      inst.probability = w;
    }
  }
  return UncertainObject(id, std::move(region), std::move(pdf));
}

}  // namespace pvdb::uncertain
