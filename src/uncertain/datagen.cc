// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/uncertain/datagen.h"

#include <algorithm>
#include <cmath>

namespace pvdb::uncertain {
namespace {

// Builds a region of the given per-dimension extents centered at `mean`,
// shifted (not clipped) so it lies fully inside `domain` — clipping would
// bias extent statistics near the border.
geom::Rect RegionAround(const geom::Point& mean, const geom::Point& extents,
                        const geom::Rect& domain) {
  geom::Point lo(mean.dim()), hi(mean.dim());
  for (int i = 0; i < mean.dim(); ++i) {
    double l = mean[i] - 0.5 * extents[i];
    double h = mean[i] + 0.5 * extents[i];
    if (l < domain.lo(i)) {
      h += domain.lo(i) - l;
      l = domain.lo(i);
    }
    if (h > domain.hi(i)) {
      l -= h - domain.hi(i);
      h = domain.hi(i);
    }
    lo[i] = std::max(l, domain.lo(i));
    hi[i] = std::min(h, domain.hi(i));
  }
  return geom::Rect(lo, hi);
}

}  // namespace

Dataset GenerateSynthetic(const SyntheticOptions& options) {
  PVDB_CHECK(options.dim >= 1 && options.dim <= geom::kMaxDim);
  PVDB_CHECK(options.domain_lo < options.domain_hi);
  const geom::Rect domain =
      geom::Rect::Cube(options.dim, options.domain_lo, options.domain_hi);
  Dataset db(domain);
  Rng rng(options.seed);
  for (size_t k = 0; k < options.count; ++k) {
    geom::Point mean(options.dim), extents(options.dim);
    for (int i = 0; i < options.dim; ++i) {
      mean[i] = rng.NextUniform(options.domain_lo, options.domain_hi);
      extents[i] = rng.NextUniform(1.0, std::max(1.0, options.max_region_extent));
    }
    const geom::Rect region = RegionAround(mean, extents, domain);
    auto obj = UncertainObject::UniformSampled(
        static_cast<ObjectId>(k), region, options.samples_per_object, &rng);
    PVDB_CHECK(db.Add(std::move(obj)).ok());
  }
  return db;
}

const char* RealDatasetName(RealDataset kind) {
  switch (kind) {
    case RealDataset::kRoads:
      return "roads";
    case RealDataset::kRRLines:
      return "rrlines";
    case RealDataset::kAirports:
      return "airports";
  }
  return "?";
}

namespace {

// 2D polyline-derived rectangles: `count` thin MBRs of consecutive segments
// of random walks seeded at cluster centers — the shape signature of road /
// railroad datasets (spatial skew + elongated, small rectangles).
Dataset GeneratePolylines2D(size_t count, double mean_segment_len,
                            double heading_jitter, int samples, Rng* rng) {
  const geom::Rect domain = geom::Rect::Cube(2, 0.0, 10000.0);
  Dataset db(domain);
  // ~sqrt(count)/2 clusters keeps skew comparable across scales.
  const int clusters = std::max<int>(8, static_cast<int>(std::sqrt(count) / 2));
  std::vector<geom::Point> centers;
  centers.reserve(clusters);
  for (int c = 0; c < clusters; ++c) {
    centers.push_back(geom::Point{rng->NextUniform(500, 9500),
                                  rng->NextUniform(500, 9500)});
  }
  ObjectId next_id = 0;
  while (db.size() < count) {
    // Start a polyline near a random cluster center.
    const geom::Point& c = centers[static_cast<size_t>(
        rng->NextInt(0, clusters - 1))];
    double x = std::clamp(c[0] + rng->NextGaussian(0.0, 400.0), 1.0, 9999.0);
    double y = std::clamp(c[1] + rng->NextGaussian(0.0, 400.0), 1.0, 9999.0);
    double heading = rng->NextUniform(0.0, 2.0 * M_PI);
    const int segments = rng->NextInt(5, 40);
    for (int s = 0; s < segments && db.size() < count; ++s) {
      const double len = std::max(2.0, rng->NextGaussian(mean_segment_len,
                                                         mean_segment_len / 3));
      double nx = x + len * std::cos(heading);
      double ny = y + len * std::sin(heading);
      nx = std::clamp(nx, 1.0, 9999.0);
      ny = std::clamp(ny, 1.0, 9999.0);
      geom::Point lo{std::min(x, nx), std::min(y, ny)};
      geom::Point hi{std::max(x, nx), std::max(y, ny)};
      // Thin MBR: give degenerate sides a small width.
      for (int i = 0; i < 2; ++i) {
        if (hi[i] - lo[i] < 1.0) {
          const double mid = 0.5 * (lo[i] + hi[i]);
          lo[i] = std::max(0.0, mid - 0.5);
          hi[i] = std::min(10000.0, mid + 0.5);
        }
      }
      auto obj = UncertainObject::UniformSampled(
          next_id++, geom::Rect(lo, hi), samples, rng);
      PVDB_CHECK(db.Add(std::move(obj)).ok());
      x = nx;
      y = ny;
      heading += rng->NextGaussian(0.0, heading_jitter);
    }
  }
  return db;
}

}  // namespace

Dataset GenerateRealLike(RealDataset kind, const RealDataOptions& options) {
  PVDB_CHECK(options.scale > 0.0 && options.scale <= 1.0);
  Rng rng(options.seed);
  switch (kind) {
    case RealDataset::kRoads: {
      const auto count = static_cast<size_t>(30000 * options.scale);
      // Roads: short wiggly segments.
      return GeneratePolylines2D(std::max<size_t>(count, 64), 25.0, 0.5,
                                 options.samples_per_object, &rng);
    }
    case RealDataset::kRRLines: {
      const auto count = static_cast<size_t>(36000 * options.scale);
      // Railroads: longer, straighter segments.
      return GeneratePolylines2D(std::max<size_t>(count, 64), 60.0, 0.15,
                                 options.samples_per_object, &rng);
    }
    case RealDataset::kAirports: {
      const auto count = std::max<size_t>(
          static_cast<size_t>(20000 * options.scale), 64);
      // 3D coordinates clustered around metro areas; GPS error modeled per
      // the paper: spherical error bound (MBR-ized) with Gaussian pdf of
      // variance 1 (domain units).
      const geom::Rect domain = geom::Rect::Cube(3, 0.0, 10000.0);
      Dataset db(domain);
      const int clusters = 128;
      std::vector<geom::Point> centers;
      centers.reserve(clusters);
      for (int c = 0; c < clusters; ++c) {
        centers.push_back(geom::Point{rng.NextUniform(300, 9700),
                                      rng.NextUniform(300, 9700),
                                      rng.NextUniform(0, 1500)});
      }
      const double error_radius = 5.0;  // the 10 m GPS sphere, domain units
      for (size_t k = 0; k < count; ++k) {
        geom::Point center(3);
        if (rng.NextBool(0.85)) {
          const geom::Point& c = centers[static_cast<size_t>(
              rng.NextInt(0, clusters - 1))];
          for (int i = 0; i < 3; ++i) {
            center[i] = c[i] + rng.NextGaussian(0.0, 120.0);
          }
        } else {
          center = geom::Point{rng.NextUniform(0, 10000),
                               rng.NextUniform(0, 10000),
                               rng.NextUniform(0, 2000)};
        }
        geom::Point half{error_radius, error_radius, error_radius};
        for (int i = 0; i < 3; ++i) {
          center[i] = std::clamp(center[i], error_radius,
                                 10000.0 - error_radius);
        }
        const geom::Rect region = geom::Rect::FromCenterHalfWidths(center, half);
        auto obj = UncertainObject::GaussianSampled(
            static_cast<ObjectId>(k), center, 1.0, region,
            options.samples_per_object, &rng);
        PVDB_CHECK(db.Add(std::move(obj)).ok());
      }
      return db;
    }
  }
  PVDB_CHECK(false);
  return Dataset(geom::Rect::Cube(2, 0, 1));
}

}  // namespace pvdb::uncertain
