// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// ObjectSource: the record-resolution seam between PNNQ Step 2 and whatever
// owns the uncertain objects. The in-memory Dataset implements it directly;
// pv::IndexSnapshot implements it over a sealed on-disk snapshot (records
// parsed lazily out of the mmap), so a serving process can evaluate
// qualification probabilities without ever materializing the raw database.

#ifndef PVDB_UNCERTAIN_OBJECT_SOURCE_H_
#define PVDB_UNCERTAIN_OBJECT_SOURCE_H_

#include "src/uncertain/uncertain_object.h"

namespace pvdb::uncertain {

/// Read-only id → object resolution.
class ObjectSource {
 public:
  virtual ~ObjectSource() = default;

  /// Borrowed pointer to the object with `id`, or nullptr when the source
  /// has no such object (or cannot decode it). The pointer stays valid for
  /// the source's lifetime; mutable sources (Dataset) additionally
  /// invalidate it on Add/Remove, which callers serialize externally (the
  /// QueryEngine's writer lock).
  virtual const UncertainObject* FindObject(ObjectId id) const = 0;
};

}  // namespace pvdb::uncertain

#endif  // PVDB_UNCERTAIN_OBJECT_SOURCE_H_
