// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Workload data generators (Section VII-A).
//
// Synthetic data re-implements the published parameterization of Theodoridis
// et al.'s generator: object means uniform in D = [0, 10k]^d, per-dimension
// uncertainty extents uniform in [1, |u(o)|], discrete pdfs of 500 uniform
// samples.
//
// The three real datasets (roads 30k / rrlines 36k, 2D; airports 20k, 3D)
// are not redistributable offline, so we generate *simulacra* matching their
// published cardinality, dimensionality, spatial skew and uncertainty model
// (clustered/polyline-shaped 2D MBRs; clustered 3D points with small
// spherical GPS error and Gaussian pdf). See DESIGN.md §4 for the
// substitution rationale.

#ifndef PVDB_UNCERTAIN_DATAGEN_H_
#define PVDB_UNCERTAIN_DATAGEN_H_

#include <cstdint>

#include "src/uncertain/dataset.h"

namespace pvdb::uncertain {

/// Parameters of the synthetic generator (defaults = Table I bold values).
struct SyntheticOptions {
  /// Dimensionality d (paper default 3).
  int dim = 3;
  /// Database cardinality |S| (paper default 20k; benchmarks scale this).
  size_t count = 20000;
  /// Domain is [domain_lo, domain_hi]^d = [0, 10k]^d.
  double domain_lo = 0.0;
  double domain_hi = 10000.0;
  /// |u(o)|: maximum uncertainty-region extent per dimension; actual extents
  /// are uniform in [1, max_region_extent].
  double max_region_extent = 20.0;
  /// Instances per discrete pdf (paper: 500).
  int samples_per_object = 500;
  /// RNG seed; equal seeds give identical databases.
  uint64_t seed = 42;
};

/// Generates a synthetic uncertain database.
Dataset GenerateSynthetic(const SyntheticOptions& options);

/// Which real-dataset simulacrum to generate.
enum class RealDataset {
  kRoads,     ///< 30k 2D thin rectangles along clustered polylines.
  kRRLines,   ///< 36k 2D rectangles along longer, straighter polylines.
  kAirports,  ///< 20k 3D GPS points, 10 m-sphere MBRs, Gaussian pdf.
};

/// Human-readable dataset name ("roads", "rrlines", "airports").
const char* RealDatasetName(RealDataset kind);

/// Options for real-data simulacra.
struct RealDataOptions {
  /// Scales the published cardinality (1.0 = full size; benchmarks often use
  /// a fraction to keep laptop runtimes sane — the harness reports it).
  double scale = 1.0;
  /// Instances per pdf (paper: 500).
  int samples_per_object = 500;
  uint64_t seed = 7;
};

/// Generates the chosen real-dataset simulacrum.
Dataset GenerateRealLike(RealDataset kind, const RealDataOptions& options);

}  // namespace pvdb::uncertain

#endif  // PVDB_UNCERTAIN_DATAGEN_H_
