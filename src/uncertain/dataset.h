// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// The uncertain database S: a set of uncertain objects over a common domain
// D ⊆ R^d, with id-based lookup and insert/delete (the update workload of
// Section VI-B operates on this container).

#ifndef PVDB_UNCERTAIN_DATASET_H_
#define PVDB_UNCERTAIN_DATASET_H_

#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/uncertain/object_source.h"
#include "src/uncertain/uncertain_object.h"

namespace pvdb::uncertain {

/// An uncertain database over domain D. Implements ObjectSource so PNNQ
/// Step 2 resolves candidate records through the same seam whether they
/// live here or in a sealed pv::IndexSnapshot.
class Dataset : public ObjectSource {
 public:
  /// Empty database over `domain`.
  explicit Dataset(geom::Rect domain) : domain_(std::move(domain)) {}

  int dim() const { return domain_.dim(); }
  const geom::Rect& domain() const { return domain_; }
  size_t size() const { return objects_.size(); }

  /// Adds an object. Its region must lie inside the domain and its id must
  /// be fresh.
  Status Add(UncertainObject object);

  /// Removes the object with `id` (swap-with-last; order not preserved).
  Status Remove(ObjectId id);

  /// Pointer to the object with `id`, or nullptr. The pointer is invalidated
  /// by Add/Remove.
  const UncertainObject* Find(ObjectId id) const;

  /// ObjectSource: same lookup, interface form.
  const UncertainObject* FindObject(ObjectId id) const override {
    return Find(id);
  }

  /// All objects, in storage order.
  const std::vector<UncertainObject>& objects() const { return objects_; }

  /// Uncertainty regions of all objects, aligned with objects().
  std::vector<geom::Rect> Regions() const;

  /// Ids of all objects, aligned with objects().
  std::vector<ObjectId> Ids() const;

 private:
  geom::Rect domain_;
  std::vector<UncertainObject> objects_;
  std::unordered_map<ObjectId, size_t> index_;
};

}  // namespace pvdb::uncertain

#endif  // PVDB_UNCERTAIN_DATASET_H_
