// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/uncertain/dataset.h"

namespace pvdb::uncertain {

Status Dataset::Add(UncertainObject object) {
  if (object.dim() != dim()) {
    return Status::InvalidArgument("object dimensionality mismatch");
  }
  if (!domain_.ContainsRect(object.region())) {
    return Status::InvalidArgument("object region escapes the domain");
  }
  if (index_.contains(object.id())) {
    return Status::AlreadyExists("object id " + std::to_string(object.id()));
  }
  index_.emplace(object.id(), objects_.size());
  objects_.push_back(std::move(object));
  return Status::OK();
}

Status Dataset::Remove(ObjectId id) {
  auto it = index_.find(id);
  if (it == index_.end()) {
    return Status::NotFound("object id " + std::to_string(id));
  }
  const size_t pos = it->second;
  index_.erase(it);
  if (pos + 1 != objects_.size()) {
    objects_[pos] = std::move(objects_.back());
    index_[objects_[pos].id()] = pos;
  }
  objects_.pop_back();
  return Status::OK();
}

const UncertainObject* Dataset::Find(ObjectId id) const {
  auto it = index_.find(id);
  return it == index_.end() ? nullptr : &objects_[it->second];
}

std::vector<geom::Rect> Dataset::Regions() const {
  std::vector<geom::Rect> out;
  out.reserve(objects_.size());
  for (const auto& o : objects_) out.push_back(o.region());
  return out;
}

std::vector<ObjectId> Dataset::Ids() const {
  std::vector<ObjectId> out;
  out.reserve(objects_.size());
  for (const auto& o : objects_) out.push_back(o.id());
  return out;
}

}  // namespace pvdb::uncertain
