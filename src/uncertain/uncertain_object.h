// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// The attribute-uncertainty model (Section I/III, following [8][13][14]):
// an uncertain object's d-dimensional attribute is a random variable whose
// support is minimally bounded by an axis-parallel uncertainty region u(o),
// with a discrete pdf — a set of weighted instances (500 samples in the
// paper's experiments).

#ifndef PVDB_UNCERTAIN_UNCERTAIN_OBJECT_H_
#define PVDB_UNCERTAIN_UNCERTAIN_OBJECT_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/random.h"
#include "src/common/status.h"
#include "src/geom/rect.h"

namespace pvdb::uncertain {

/// Stable identifier of an uncertain object within a database.
using ObjectId = uint64_t;

/// Sentinel for "no object".
inline constexpr ObjectId kInvalidObjectId = ~static_cast<ObjectId>(0);

/// One weighted instance of the discrete uncertainty pdf.
struct Instance {
  geom::Point position;
  double probability;
};

/// An uncertain object: id, rectangular uncertainty region, discrete pdf.
class UncertainObject {
 public:
  /// Constructs with an explicit instance set. The instances must lie inside
  /// `region` and their probabilities should sum to ~1 (checked in debug).
  UncertainObject(ObjectId id, geom::Rect region, std::vector<Instance> pdf);

  /// Object with `n` instances drawn uniformly from `region`, each carrying
  /// probability 1/n (the paper's synthetic-data model, Section VII-A).
  static UncertainObject UniformSampled(ObjectId id, const geom::Rect& region,
                                        int n, Rng* rng);

  /// Object with `n` instances from an isotropic Gaussian centered at
  /// `center` with standard deviation `stddev`, truncated (by rejection,
  /// falling back to clamping) to `region`; probability 1/n each (the
  /// paper's real-data model: GPS error, Section VII-A).
  static UncertainObject GaussianSampled(ObjectId id, const geom::Point& center,
                                         double stddev,
                                         const geom::Rect& region, int n,
                                         Rng* rng);

  ObjectId id() const { return id_; }
  int dim() const { return region_.dim(); }

  /// The uncertainty region u(o): minimal axis-parallel bound of the pdf
  /// support.
  const geom::Rect& region() const { return region_; }

  /// The discrete pdf instances.
  const std::vector<Instance>& pdf() const { return pdf_; }

  /// Representative "mean position" used by the FS / IS C-set strategies:
  /// the center of u(o).
  geom::Point MeanPosition() const { return region_.Center(); }

  /// Flat binary serialization (secondary-index record payload).
  void AppendTo(std::vector<uint8_t>* out) const;

  /// Inverse of AppendTo; advances `*offset` past the consumed bytes. All
  /// reads are bounds-checked against `bytes` — truncated or malformed
  /// input returns a Corruption status, never crashes. Takes a span (which
  /// vectors convert to implicitly) so snapshot records decode straight out
  /// of an mmap'd file without an intermediate copy.
  static Result<UncertainObject> ParseFrom(std::span<const uint8_t> bytes,
                                           size_t* offset);

 private:
  ObjectId id_;
  geom::Rect region_;
  std::vector<Instance> pdf_;
};

}  // namespace pvdb::uncertain

#endif  // PVDB_UNCERTAIN_UNCERTAIN_OBJECT_H_
