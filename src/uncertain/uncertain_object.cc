// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/uncertain/uncertain_object.h"

#include <cmath>
#include <cstring>

namespace pvdb::uncertain {

UncertainObject::UncertainObject(ObjectId id, geom::Rect region,
                                 std::vector<Instance> pdf)
    : id_(id), region_(std::move(region)), pdf_(std::move(pdf)) {
#ifndef NDEBUG
  double total = 0.0;
  for (const Instance& inst : pdf_) {
    PVDB_DCHECK(inst.position.dim() == region_.dim());
    PVDB_DCHECK(region_.Inflated(1e-9).Contains(inst.position));
    PVDB_DCHECK(inst.probability >= 0.0);
    total += inst.probability;
  }
  PVDB_DCHECK(pdf_.empty() || std::abs(total - 1.0) < 1e-6);
#endif
}

UncertainObject UncertainObject::UniformSampled(ObjectId id,
                                                const geom::Rect& region,
                                                int n, Rng* rng) {
  PVDB_CHECK(n > 0 && rng != nullptr);
  std::vector<Instance> pdf;
  pdf.reserve(n);
  const double p = 1.0 / n;
  for (int k = 0; k < n; ++k) {
    geom::Point x(region.dim());
    for (int i = 0; i < region.dim(); ++i) {
      x[i] = rng->NextUniform(region.lo(i), region.hi(i));
    }
    pdf.push_back({x, p});
  }
  return UncertainObject(id, region, std::move(pdf));
}

UncertainObject UncertainObject::GaussianSampled(ObjectId id,
                                                 const geom::Point& center,
                                                 double stddev,
                                                 const geom::Rect& region,
                                                 int n, Rng* rng) {
  PVDB_CHECK(n > 0 && rng != nullptr);
  std::vector<Instance> pdf;
  pdf.reserve(n);
  const double p = 1.0 / n;
  constexpr int kMaxRejections = 16;
  for (int k = 0; k < n; ++k) {
    geom::Point x(center.dim());
    bool inside = false;
    for (int attempt = 0; attempt < kMaxRejections && !inside; ++attempt) {
      for (int i = 0; i < center.dim(); ++i) {
        x[i] = rng->NextGaussian(center[i], stddev);
      }
      inside = region.Contains(x);
    }
    if (!inside) x = region.ClampPoint(x);
    pdf.push_back({x, p});
  }
  return UncertainObject(id, region, std::move(pdf));
}

void UncertainObject::AppendTo(std::vector<uint8_t>* out) const {
  auto push = [&](const void* src, size_t len) {
    const auto* b = static_cast<const uint8_t*>(src);
    out->insert(out->end(), b, b + len);
  };
  const uint64_t id = id_;
  const uint32_t dim = static_cast<uint32_t>(region_.dim());
  const uint32_t n = static_cast<uint32_t>(pdf_.size());
  push(&id, sizeof(id));
  push(&dim, sizeof(dim));
  push(&n, sizeof(n));
  for (int i = 0; i < region_.dim(); ++i) {
    const double lo = region_.lo(i), hi = region_.hi(i);
    push(&lo, sizeof(lo));
    push(&hi, sizeof(hi));
  }
  for (const Instance& inst : pdf_) {
    for (int i = 0; i < region_.dim(); ++i) {
      const double c = inst.position[i];
      push(&c, sizeof(c));
    }
    push(&inst.probability, sizeof(inst.probability));
  }
}

Result<UncertainObject> UncertainObject::ParseFrom(
    std::span<const uint8_t> bytes, size_t* offset) {
  auto pull = [&](void* dst, size_t len) -> bool {
    if (*offset + len > bytes.size()) return false;
    std::memcpy(dst, bytes.data() + *offset, len);
    *offset += len;
    return true;
  };
  uint64_t id;
  uint32_t dim, n;
  if (!pull(&id, sizeof(id)) || !pull(&dim, sizeof(dim)) ||
      !pull(&n, sizeof(n))) {
    return Status::Corruption("uncertain object header truncated");
  }
  if (dim < 1 || dim > static_cast<uint32_t>(geom::kMaxDim)) {
    return Status::Corruption("uncertain object has invalid dimension");
  }
  geom::Point lo(static_cast<int>(dim)), hi(static_cast<int>(dim));
  for (uint32_t i = 0; i < dim; ++i) {
    double l, h;
    if (!pull(&l, sizeof(l)) || !pull(&h, sizeof(h))) {
      return Status::Corruption("uncertain object region truncated");
    }
    lo[static_cast<int>(i)] = l;
    hi[static_cast<int>(i)] = h;
  }
  std::vector<Instance> pdf;
  pdf.reserve(n);
  for (uint32_t k = 0; k < n; ++k) {
    geom::Point x(static_cast<int>(dim));
    for (uint32_t i = 0; i < dim; ++i) {
      double c;
      if (!pull(&c, sizeof(c))) {
        return Status::Corruption("uncertain object pdf truncated");
      }
      x[static_cast<int>(i)] = c;
    }
    double p;
    if (!pull(&p, sizeof(p))) {
      return Status::Corruption("uncertain object pdf truncated");
    }
    pdf.push_back({x, p});
  }
  return UncertainObject(id, geom::Rect(lo, hi), std::move(pdf));
}

}  // namespace pvdb::uncertain
