// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Unit and property tests for points, rectangles and min/max distances,
// including randomized cross-checks of the closed-form distance bounds
// against dense sampling.

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/random.h"
#include "src/geom/distance.h"
#include "src/geom/morton.h"
#include "src/geom/point.h"
#include "src/geom/rect.h"

namespace pvdb::geom {
namespace {

// ---------------------------------------------------------------------------
// Point
// ---------------------------------------------------------------------------

TEST(PointTest, ConstructsAtOrigin) {
  Point p(3);
  EXPECT_EQ(p.dim(), 3);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(p[i], 0.0);
}

TEST(PointTest, InitializerListAndAccess) {
  Point p{1.0, -2.5, 3.25};
  EXPECT_EQ(p.dim(), 3);
  EXPECT_EQ(p[0], 1.0);
  EXPECT_EQ(p[1], -2.5);
  EXPECT_EQ(p[2], 3.25);
  p[1] = 7.0;
  EXPECT_EQ(p[1], 7.0);
}

TEST(PointTest, EqualityRequiresSameDimAndCoords) {
  EXPECT_EQ((Point{1, 2}), (Point{1, 2}));
  EXPECT_NE((Point{1, 2}), (Point{1, 3}));
  EXPECT_NE((Point{1, 2}), (Point{1, 2, 0}));
}

TEST(PointTest, DistanceIsEuclidean) {
  Point a{0, 0}, b{3, 4};
  EXPECT_DOUBLE_EQ(a.DistanceSqTo(b), 25.0);
  EXPECT_DOUBLE_EQ(a.DistanceTo(b), 5.0);
  EXPECT_DOUBLE_EQ(b.DistanceTo(a), 5.0);
}

TEST(PointTest, ToStringRoundTripReadable) {
  Point p{1.5, 2.0};
  EXPECT_EQ(p.ToString(), "(1.5, 2)");
}

// ---------------------------------------------------------------------------
// Rect
// ---------------------------------------------------------------------------

TEST(RectTest, BasicAccessors) {
  Rect r(Point{0, 1}, Point{4, 5});
  EXPECT_EQ(r.dim(), 2);
  EXPECT_EQ(r.lo(0), 0.0);
  EXPECT_EQ(r.hi(1), 5.0);
  EXPECT_EQ(r.Side(0), 4.0);
  EXPECT_EQ(r.Center(), (Point{2, 3}));
  EXPECT_DOUBLE_EQ(r.Volume(), 16.0);
  EXPECT_DOUBLE_EQ(r.Margin(), 8.0);
}

TEST(RectTest, CubeAndFromPoint) {
  Rect c = Rect::Cube(3, -1, 1);
  EXPECT_DOUBLE_EQ(c.Volume(), 8.0);
  Rect p = Rect::FromPoint(Point{2, 2, 2});
  EXPECT_DOUBLE_EQ(p.Volume(), 0.0);
  EXPECT_TRUE(c.Intersects(Rect::FromPoint(Point{0, 0, 0})));
}

TEST(RectTest, FromCenterHalfWidths) {
  Rect r = Rect::FromCenterHalfWidths(Point{5, 5}, Point{2, 3});
  EXPECT_EQ(r.lo(0), 3.0);
  EXPECT_EQ(r.hi(0), 7.0);
  EXPECT_EQ(r.lo(1), 2.0);
  EXPECT_EQ(r.hi(1), 8.0);
}

TEST(RectTest, ContainsIsClosed) {
  Rect r(Point{0, 0}, Point{2, 2});
  EXPECT_TRUE(r.Contains(Point{0, 0}));
  EXPECT_TRUE(r.Contains(Point{2, 2}));
  EXPECT_TRUE(r.Contains(Point{1, 1}));
  EXPECT_FALSE(r.Contains(Point{2.0001, 1}));
}

TEST(RectTest, IntersectsIsClosedInteriorIsOpen) {
  Rect a(Point{0, 0}, Point{1, 1});
  Rect b(Point{1, 0}, Point{2, 1});  // shares an edge
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.InteriorIntersects(b));
  Rect c(Point{0.5, 0.5}, Point{2, 2});
  EXPECT_TRUE(a.InteriorIntersects(c));
}

TEST(RectTest, UnionAndIntersection) {
  Rect a(Point{0, 0}, Point{2, 2});
  Rect b(Point{1, 1}, Point{3, 4});
  Rect u = Rect::Union(a, b);
  EXPECT_EQ(u, Rect(Point{0, 0}, Point{3, 4}));
  Rect i = Rect::Intersection(a, b);
  EXPECT_EQ(i, Rect(Point{1, 1}, Point{2, 2}));
}

TEST(RectTest, CornersEnumerate) {
  Rect r(Point{0, 0, 0}, Point{1, 2, 3});
  EXPECT_EQ(r.Corner(0), (Point{0, 0, 0}));
  EXPECT_EQ(r.Corner(0b111), (Point{1, 2, 3}));
  EXPECT_EQ(r.Corner(0b010), (Point{0, 2, 0}));
}

TEST(RectTest, LongestDimAndMaxSide) {
  Rect r(Point{0, 0, 0}, Point{1, 5, 3});
  EXPECT_EQ(r.LongestDim(), 1);
  EXPECT_DOUBLE_EQ(r.MaxSide(), 5.0);
}

TEST(RectTest, ClampPoint) {
  Rect r(Point{0, 0}, Point{2, 2});
  EXPECT_EQ(r.ClampPoint(Point{-1, 1}), (Point{0, 1}));
  EXPECT_EQ(r.ClampPoint(Point{3, 3}), (Point{2, 2}));
  EXPECT_EQ(r.ClampPoint(Point{1, 1}), (Point{1, 1}));
}

TEST(RectTest, InflatedGrowsAndShrinksSafely) {
  Rect r(Point{0, 0}, Point{2, 2});
  Rect grown = r.Inflated(1.0);
  EXPECT_EQ(grown, Rect(Point{-1, -1}, Point{3, 3}));
  Rect collapsed = r.Inflated(-2.0);  // over-shrink collapses to center
  EXPECT_DOUBLE_EQ(collapsed.Volume(), 0.0);
}

// ---------------------------------------------------------------------------
// Distances: exact cases
// ---------------------------------------------------------------------------

TEST(DistanceTest, PointInsideHasZeroMinDist) {
  Rect r(Point{0, 0}, Point{4, 4});
  EXPECT_DOUBLE_EQ(MinDist(r, Point{2, 2}), 0.0);
  EXPECT_DOUBLE_EQ(MaxDist(r, Point{2, 2}), std::sqrt(8.0));
}

TEST(DistanceTest, PointOutsideAxisAligned) {
  Rect r(Point{0, 0}, Point{4, 4});
  EXPECT_DOUBLE_EQ(MinDist(r, Point{6, 2}), 2.0);
  EXPECT_DOUBLE_EQ(MaxDist(r, Point{6, 2}), std::sqrt(36 + 4));
}

TEST(DistanceTest, RectRectDisjointAndOverlap) {
  Rect a(Point{0, 0}, Point{1, 1});
  Rect b(Point{3, 0}, Point{4, 1});
  EXPECT_DOUBLE_EQ(MinDist(a, b), 2.0);
  EXPECT_DOUBLE_EQ(MaxDist(a, b), std::sqrt(16 + 1));
  Rect c(Point{0.5, 0.5}, Point{2, 2});
  EXPECT_DOUBLE_EQ(MinDist(a, c), 0.0);
}

TEST(DistanceTest, OnBisectorDetectsEquality) {
  // Point object at (0,0), point object at (4,0): bisector at x = 2.
  Rect a = Rect::FromPoint(Point{0, 0});
  Rect b = Rect::FromPoint(Point{4, 0});
  EXPECT_TRUE(OnBisector(a, b, Point{2, 0}));
  EXPECT_FALSE(OnBisector(a, b, Point{1, 0}));
}

// ---------------------------------------------------------------------------
// Distances: sampling properties (parameterized over dimension)
// ---------------------------------------------------------------------------

class DistanceSamplingTest : public ::testing::TestWithParam<int> {};

Rect RandomRect(Rng* rng, int dim, double lo, double hi, double max_side) {
  Point a(dim), b(dim);
  for (int i = 0; i < dim; ++i) {
    const double c = rng->NextUniform(lo + max_side, hi - max_side);
    const double s = rng->NextUniform(0.1, max_side);
    a[i] = c - s;
    b[i] = c + s;
  }
  return Rect(a, b);
}

Point RandomPointIn(Rng* rng, const Rect& r) {
  Point p(r.dim());
  for (int i = 0; i < r.dim(); ++i) {
    p[i] = rng->NextUniform(r.lo(i), r.hi(i));
  }
  return p;
}

TEST_P(DistanceSamplingTest, MinMaxDistBoundAllInteriorPoints) {
  const int dim = GetParam();
  Rng rng(100 + dim);
  for (int trial = 0; trial < 50; ++trial) {
    const Rect r = RandomRect(&rng, dim, 0, 100, 10);
    const Point q = RandomPointIn(&rng, Rect::Cube(dim, 0, 100));
    const double min_d = MinDist(r, q);
    const double max_d = MaxDist(r, q);
    EXPECT_LE(min_d, max_d);
    for (int s = 0; s < 200; ++s) {
      const Point x = RandomPointIn(&rng, r);
      const double d = x.DistanceTo(q);
      EXPECT_LE(min_d, d + 1e-9);
      EXPECT_GE(max_d, d - 1e-9);
    }
  }
}

TEST_P(DistanceSamplingTest, RectRectBoundsAllPointPairs) {
  const int dim = GetParam();
  Rng rng(200 + dim);
  for (int trial = 0; trial < 30; ++trial) {
    const Rect a = RandomRect(&rng, dim, 0, 100, 8);
    const Rect b = RandomRect(&rng, dim, 0, 100, 8);
    const double min_d = MinDist(a, b);
    const double max_d = MaxDist(a, b);
    for (int s = 0; s < 200; ++s) {
      const Point x = RandomPointIn(&rng, a);
      const Point y = RandomPointIn(&rng, b);
      const double d = x.DistanceTo(y);
      EXPECT_LE(min_d, d + 1e-9);
      EXPECT_GE(max_d, d - 1e-9);
    }
  }
}

TEST_P(DistanceSamplingTest, MaxDistAttainedAtSomeCorner) {
  const int dim = GetParam();
  Rng rng(300 + dim);
  for (int trial = 0; trial < 50; ++trial) {
    const Rect r = RandomRect(&rng, dim, 0, 100, 10);
    const Point q = RandomPointIn(&rng, Rect::Cube(dim, 0, 100));
    double best = 0;
    for (unsigned mask = 0; mask < (1u << dim); ++mask) {
      best = std::max(best, r.Corner(mask).DistanceTo(q));
    }
    EXPECT_NEAR(best, MaxDist(r, q), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, DistanceSamplingTest,
                         ::testing::Values(2, 3, 4, 5));

// ---------------------------------------------------------------------------
// Morton keys
// ---------------------------------------------------------------------------

TEST(MortonTest, Simple2DInterleaving) {
  const Rect domain = Rect::Cube(2, 0, 1024);
  // Origin maps to key 0; the far corner maps to the max key.
  EXPECT_EQ(MortonKey(Point{0, 0}, domain), 0u);
  const uint64_t far_key = MortonKey(Point{1024, 1024}, domain);
  EXPECT_EQ(far_key, ~0ULL) << "2x32-bit interleave saturates";
}

TEST(MortonTest, QuadrantOrdering2D) {
  const Rect domain = Rect::Cube(2, 0, 100);
  // Z-order visits quadrants in (low,low) < (high,low) < (low,high) <
  // (high,high) order for dimension-0-least-significant interleaving.
  const uint64_t ll = MortonKey(Point{10, 10}, domain);
  const uint64_t hl = MortonKey(Point{90, 10}, domain);
  const uint64_t lh = MortonKey(Point{10, 90}, domain);
  const uint64_t hh = MortonKey(Point{90, 90}, domain);
  EXPECT_LT(ll, hl);
  EXPECT_LT(hl, lh);
  EXPECT_LT(lh, hh);
}

TEST(MortonTest, ClampsOutOfDomainPoints) {
  const Rect domain = Rect::Cube(2, 0, 100);
  EXPECT_EQ(MortonKey(Point{-50, -50}, domain),
            MortonKey(Point{0, 0}, domain));
  EXPECT_EQ(MortonKey(Point{500, 500}, domain),
            MortonKey(Point{100, 100}, domain));
}

TEST(MortonTest, LocalityBeatsRandomOrder) {
  // Mean Z-key distance of spatially close pairs must be far below that of
  // random pairs (the property bulk loading exploits).
  const Rect domain = Rect::Cube(3, 0, 1000);
  Rng rng(4242);
  double near_sum = 0, far_sum = 0;
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    Point a(3), near(3), far(3);
    for (int i = 0; i < 3; ++i) {
      a[i] = rng.NextUniform(50, 950);
      near[i] = a[i] + rng.NextUniform(-5, 5);
      far[i] = rng.NextUniform(0, 1000);
    }
    const auto ka = static_cast<double>(MortonKey(a, domain));
    near_sum += std::abs(ka - static_cast<double>(MortonKey(near, domain)));
    far_sum += std::abs(ka - static_cast<double>(MortonKey(far, domain)));
  }
  EXPECT_LT(near_sum * 5, far_sum);
}

TEST(MortonTest, AllDimensionsProduceKeys) {
  Rng rng(11);
  for (int d = 2; d <= 8; ++d) {
    const Rect domain = Rect::Cube(d, 0, 10);
    Point p(d);
    for (int i = 0; i < d; ++i) p[i] = rng.NextUniform(0, 10);
    const uint64_t k1 = MortonKey(p, domain);
    const uint64_t k2 = MortonKey(p, domain);
    EXPECT_EQ(k1, k2);
  }
}

}  // namespace
}  // namespace pvdb::geom
