// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Figure 1(a) reduction: "when the objects in S are certain points, V(o)
// reduces to a Voronoi cell of o". With degenerate (point) uncertainty
// regions the whole PV machinery must behave as an exact nearest-neighbor
// index: UBRs bound classical Voronoi cells, Step 1 returns exactly the
// nearest neighbor, and qualification probabilities collapse to 1.

#include <gtest/gtest.h>

#include <limits>

#include "src/common/random.h"
#include "src/pv/pnnq.h"
#include "src/pv/pv_index.h"
#include "src/pv/se.h"
#include "src/storage/pager.h"
#include "src/uncertain/dataset.h"

namespace pvdb {
namespace {

// A certain object: point region, single instance with probability 1.
uncertain::UncertainObject MakeCertain(uncertain::ObjectId id,
                                       const geom::Point& p) {
  return uncertain::UncertainObject(id, geom::Rect::FromPoint(p),
                                    {uncertain::Instance{p, 1.0}});
}

struct PointFixture {
  PointFixture(int dim, size_t count, uint64_t seed)
      : db(geom::Rect::Cube(dim, 0, 1000)) {
    Rng rng(seed);
    for (uncertain::ObjectId i = 0; i < count; ++i) {
      geom::Point p(dim);
      for (int k = 0; k < dim; ++k) p[k] = rng.NextUniform(5, 995);
      points.push_back(p);
      PVDB_CHECK(db.Add(MakeCertain(i, p)).ok());
    }
  }

  uncertain::ObjectId TrueNearest(const geom::Point& q) const {
    uncertain::ObjectId best = uncertain::kInvalidObjectId;
    double best_d = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < points.size(); ++i) {
      const double d = points[i].DistanceSqTo(q);
      if (d < best_d) {
        best_d = d;
        best = static_cast<uncertain::ObjectId>(i);
      }
    }
    return best;
  }

  uncertain::Dataset db;
  std::vector<geom::Point> points;
};

class VoronoiReductionTest : public ::testing::TestWithParam<int> {};

TEST_P(VoronoiReductionTest, Step1ReturnsExactNearestNeighbor) {
  const int dim = GetParam();
  PointFixture fx(dim, 200, /*seed=*/60 + static_cast<uint64_t>(dim));
  storage::InMemoryPager pager;
  auto index = pv::PvIndex::Build(fx.db, &pager, pv::PvIndexOptions{});
  ASSERT_TRUE(index.ok());
  Rng rng(61);
  for (int q = 0; q < 150; ++q) {
    geom::Point query(dim);
    for (int k = 0; k < dim; ++k) query[k] = rng.NextUniform(0, 1000);
    auto got = index.value()->QueryPossibleNN(query);
    ASSERT_TRUE(got.ok());
    // For certain points minmax pruning keeps exactly the true NN
    // (general position: ties are measure-zero under random draws).
    ASSERT_EQ(got.value().size(), 1u);
    EXPECT_EQ(got.value()[0], fx.TrueNearest(query));
  }
}

TEST_P(VoronoiReductionTest, UbrContainsSampledVoronoiCell) {
  const int dim = GetParam();
  PointFixture fx(dim, 60, /*seed=*/70 + static_cast<uint64_t>(dim));
  pv::SeAlgorithm se(fx.db.domain(), pv::SeOptions{});
  // Build each object's UBR against the full database (C-set = S).
  Rng rng(71);
  for (size_t pick = 0; pick < 6; ++pick) {
    const auto& o = fx.db.objects()[pick * 9];
    std::vector<geom::Rect> others;
    for (const auto& other : fx.db.objects()) {
      if (other.id() != o.id()) others.push_back(other.region());
    }
    const geom::Rect ubr = se.ComputeUbr(o, others);
    // Sample the classical Voronoi cell of o's point.
    for (int s = 0; s < 4000; ++s) {
      geom::Point p(dim);
      for (int k = 0; k < dim; ++k) p[k] = rng.NextUniform(0, 1000);
      if (fx.TrueNearest(p) == o.id()) {
        EXPECT_TRUE(ubr.Contains(p))
            << "Voronoi-cell point escaped the UBR (dim " << dim << ")";
      }
    }
  }
}

TEST_P(VoronoiReductionTest, ProbabilitiesCollapseToCertainty) {
  const int dim = GetParam();
  PointFixture fx(dim, 100, /*seed=*/80 + static_cast<uint64_t>(dim));
  pv::PnnStep2Evaluator step2(&fx.db);
  Rng rng(81);
  for (int q = 0; q < 40; ++q) {
    geom::Point query(dim);
    for (int k = 0; k < dim; ++k) query[k] = rng.NextUniform(0, 1000);
    const auto candidates = pv::Step1BruteForce(fx.db, query);
    const auto results = step2.Evaluate(query, candidates);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].id, fx.TrueNearest(query));
    EXPECT_DOUBLE_EQ(results[0].probability, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, VoronoiReductionTest,
                         ::testing::Values(2, 3, 4, 5));

TEST(VoronoiReductionTest, CoLocatedPointsShareTheCell) {
  // Two identical certain points: regions intersect, so neither constrains
  // the other (Lemma 2) — both PV-cells stay domain-wide and both are
  // candidates everywhere, splitting probability evenly.
  uncertain::Dataset db(geom::Rect::Cube(2, 0, 100));
  const geom::Point p{40, 40};
  ASSERT_TRUE(db.Add(MakeCertain(0, p)).ok());
  ASSERT_TRUE(db.Add(MakeCertain(1, p)).ok());
  storage::InMemoryPager pager;
  auto index = pv::PvIndex::Build(db, &pager, pv::PvIndexOptions{});
  ASSERT_TRUE(index.ok());
  for (uncertain::ObjectId id : {0u, 1u}) {
    auto ubr = index.value()->GetUbr(id);
    ASSERT_TRUE(ubr.ok());
    EXPECT_EQ(ubr.value(), db.domain());
  }
  auto got = index.value()->QueryPossibleNN(geom::Point{90, 10});
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().size(), 2u);
}

}  // namespace
}  // namespace pvdb
