// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Packed pdf-record codec tests (uncertain/record_codec.h): lossless mode
// decodes bit-identically, float32 mode stays inside its documented
// coordinate/weight tolerances (and uniform weights still round-trip
// bit-identically), and every malformed input — truncation at any prefix,
// unknown flags, inverted regions, negative weights — is a descriptive
// Corruption status, never a crash.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "src/common/random.h"
#include "src/uncertain/record_codec.h"
#include "src/uncertain/uncertain_object.h"

namespace pvdb {
namespace {

using uncertain::Instance;
using uncertain::RecordPack;
using uncertain::UncertainObject;

geom::Rect RandomRegion(Rng* rng, int dim) {
  geom::Point lo(dim), hi(dim);
  for (int d = 0; d < dim; ++d) {
    lo[d] = rng->NextUniform(0.0, 900.0);
    hi[d] = lo[d] + rng->NextUniform(1.0, 100.0);
  }
  return geom::Rect(lo, hi);
}

/// An object with non-uniform (normalized random) weights — the shape that
/// cannot elide its weight array.
UncertainObject SkewedObject(Rng* rng, uint64_t id, int dim, int n) {
  const geom::Rect region = RandomRegion(rng, dim);
  std::vector<Instance> pdf;
  std::vector<double> w(n);
  double total = 0.0;
  for (int k = 0; k < n; ++k) {
    w[k] = rng->NextUniform(0.1, 1.0);
    total += w[k];
  }
  for (int k = 0; k < n; ++k) {
    geom::Point p(dim);
    for (int d = 0; d < dim; ++d) {
      p[d] = rng->NextUniform(region.lo(d), region.hi(d));
    }
    pdf.push_back(Instance{p, w[k] / total});
  }
  return UncertainObject(id, region, std::move(pdf));
}

void ExpectBitIdentical(const UncertainObject& a, const UncertainObject& b) {
  ASSERT_EQ(a.id(), b.id());
  ASSERT_EQ(a.region(), b.region());
  ASSERT_EQ(a.pdf().size(), b.pdf().size());
  for (size_t i = 0; i < a.pdf().size(); ++i) {
    EXPECT_EQ(a.pdf()[i].position, b.pdf()[i].position) << "instance " << i;
    EXPECT_EQ(a.pdf()[i].probability, b.pdf()[i].probability)
        << "instance " << i;
  }
}

TEST(RecordCodecTest, LosslessRoundTripIsBitIdentical) {
  Rng rng(21);
  for (int dim : {1, 2, 3, 5, geom::kMaxDim}) {
    for (int n : {1, 2, 7, 40}) {
      // Uniform weights (elided) and skewed weights (stored raw).
      const geom::Rect region = RandomRegion(&rng, dim);
      std::vector<UncertainObject> objects;
      objects.push_back(
          UncertainObject::UniformSampled(1, region, n, &rng));
      objects.push_back(SkewedObject(&rng, 2, dim, n));
      for (const UncertainObject& o : objects) {
        // UBR == region (both elisions) and UBR != region (region stored).
        geom::Point wide_hi = o.region().hi();
        wide_hi[0] += 5.0;
        for (const geom::Rect& ubr :
             {o.region(), geom::Rect(o.region().lo(), wide_hi)}) {
          std::vector<uint8_t> bytes;
          uncertain::EncodePackedObject(o, ubr, RecordPack::kLossless,
                                        &bytes);
          size_t offset = 0;
          auto back = uncertain::DecodePackedObject(bytes, &offset, ubr);
          ASSERT_TRUE(back.ok()) << back.status().ToString();
          EXPECT_EQ(offset, bytes.size());
          ExpectBitIdentical(o, back.value());
        }
      }
    }
  }
}

TEST(RecordCodecTest, Float32StaysWithinDocumentedTolerance) {
  Rng rng(22);
  for (int dim : {2, 3, 6}) {
    for (int round = 0; round < 20; ++round) {
      const UncertainObject o = SkewedObject(&rng, 7, dim, 12);
      std::vector<uint8_t> bytes;
      uncertain::EncodePackedObject(o, o.region(), RecordPack::kFloat32,
                                    &bytes);
      size_t offset = 0;
      auto back =
          uncertain::DecodePackedObject(bytes, &offset, o.region());
      ASSERT_TRUE(back.ok()) << back.status().ToString();
      ASSERT_EQ(back.value().pdf().size(), o.pdf().size());
      for (size_t i = 0; i < o.pdf().size(); ++i) {
        const geom::Point& x = o.pdf()[i].position;
        const geom::Point& x2 = back.value().pdf()[i].position;
        for (int d = 0; d < dim; ++d) {
          const double side = o.region().hi(d) - o.region().lo(d);
          EXPECT_LE(std::abs(x2[d] - x[d]), side * 0x1p-23)
              << "instance " << i << " dim " << d;
          // Clamped back into the region: the support invariant holds.
          EXPECT_GE(x2[d], o.region().lo(d));
          EXPECT_LE(x2[d], o.region().hi(d));
        }
        const double w = o.pdf()[i].probability;
        EXPECT_LE(std::abs(back.value().pdf()[i].probability - w),
                  w * 0x1p-23)
            << "instance " << i;
      }
    }
  }
}

TEST(RecordCodecTest, Float32UniformWeightsRoundTripBitIdentically) {
  // Elided fields are reconstructed, not quantized: exactly-1/n weights
  // come back as exactly 1/n even in the lossy mode.
  Rng rng(23);
  for (int n : {1, 3, 16, 101}) {
    const UncertainObject o =
        UncertainObject::UniformSampled(9, RandomRegion(&rng, 3), n, &rng);
    std::vector<uint8_t> bytes;
    uncertain::EncodePackedObject(o, o.region(), RecordPack::kFloat32,
                                  &bytes);
    size_t offset = 0;
    auto back = uncertain::DecodePackedObject(bytes, &offset, o.region());
    ASSERT_TRUE(back.ok());
    const double uniform = 1.0 / static_cast<double>(n);
    for (const Instance& inst : back.value().pdf()) {
      EXPECT_EQ(inst.probability, uniform);
    }
  }
}

TEST(RecordCodecTest, Float32ExpectedDistanceAgreesMonteCarlo) {
  // Downstream agreement of the lossy mode: the pdf-expected distance to a
  // probe — the quantity Step 2 integrates — moves by at most the
  // coordinate quantization error (|Δx| <= sum_d side_d * 2^-23 per
  // instance, weights exact here up to w * 2^-23).
  Rng rng(24);
  for (int round = 0; round < 30; ++round) {
    const int dim = 3;
    const UncertainObject o = SkewedObject(&rng, 11, dim, 64);
    std::vector<uint8_t> bytes;
    uncertain::EncodePackedObject(o, o.region(), RecordPack::kFloat32,
                                  &bytes);
    size_t offset = 0;
    auto back = uncertain::DecodePackedObject(bytes, &offset, o.region());
    ASSERT_TRUE(back.ok());
    geom::Point probe(dim);
    for (int d = 0; d < dim; ++d) probe[d] = rng.NextUniform(0.0, 1000.0);
    double expected = 0.0, got = 0.0, bound = 0.0;
    double max_side = 0.0;
    for (int d = 0; d < dim; ++d) {
      max_side = std::max(max_side, o.region().hi(d) - o.region().lo(d));
    }
    for (size_t i = 0; i < o.pdf().size(); ++i) {
      expected += o.pdf()[i].probability *
                  o.pdf()[i].position.DistanceTo(probe);
      got += back.value().pdf()[i].probability *
             back.value().pdf()[i].position.DistanceTo(probe);
      // |dist(x') - dist(x)| <= |x' - x| <= sqrt(dim) * max_side * 2^-23,
      // plus the weight wobble on a distance bounded by the domain diagonal.
      bound += o.pdf()[i].probability * std::sqrt(3.0) * max_side * 0x1p-23 +
               o.pdf()[i].probability * 0x1p-23 * 2000.0;
    }
    EXPECT_NEAR(got, expected, bound + 1e-12);
  }
}

TEST(RecordCodecTest, TruncationAtEveryPrefixIsCorruption) {
  Rng rng(25);
  const UncertainObject o = SkewedObject(&rng, 13, 2, 5);
  geom::Point wide_hi = o.region().hi();
  wide_hi[0] += 2.0;
  const geom::Rect ubr(o.region().lo(), wide_hi);  // region stored explicitly
  for (RecordPack mode : {RecordPack::kLossless, RecordPack::kFloat32}) {
    std::vector<uint8_t> bytes;
    uncertain::EncodePackedObject(o, ubr, mode, &bytes);
    for (size_t cut = 0; cut < bytes.size(); ++cut) {
      std::span<const uint8_t> prefix(bytes.data(), cut);
      size_t offset = 0;
      auto r = uncertain::DecodePackedObject(prefix, &offset, ubr);
      EXPECT_EQ(r.status().code(), StatusCode::kCorruption)
          << "cut=" << cut << " mode=" << static_cast<int>(mode);
    }
  }
}

TEST(RecordCodecTest, UnknownFlagsAreRejected) {
  Rng rng(26);
  const UncertainObject o =
      UncertainObject::UniformSampled(15, RandomRegion(&rng, 2), 4, &rng);
  std::vector<uint8_t> bytes;
  uncertain::EncodePackedObject(o, o.region(), RecordPack::kLossless, &bytes);
  // flags u32 sits after id u64 + dim u32 + n u32.
  bytes[16] |= 1u << 4;
  size_t offset = 0;
  auto r = uncertain::DecodePackedObject(bytes, &offset, o.region());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  EXPECT_NE(r.status().message().find("flags"), std::string::npos);
}

TEST(RecordCodecTest, InvertedRegionsAreRejected) {
  Rng rng(27);
  const UncertainObject o =
      UncertainObject::UniformSampled(17, RandomRegion(&rng, 2), 4, &rng);

  // Stored region: patch its first interval to lo > hi. (The elided-region
  // variant — an inverted UBR — is covered at the snapshot layer, which
  // validates raw UBR bytes before Rect construction.)
  geom::Point wide_hi = o.region().hi();
  wide_hi[0] += 2.0;
  const geom::Rect ubr(o.region().lo(), wide_hi);
  std::vector<uint8_t> stored;
  uncertain::EncodePackedObject(o, ubr, RecordPack::kLossless, &stored);
  // Header is 24 bytes; region doubles follow (lo0, hi0, ...). Set hi0 to
  // lo0 - 1.
  double lo0;
  std::memcpy(&lo0, stored.data() + 24, sizeof(lo0));
  const double bad_hi = lo0 - 1.0;
  std::memcpy(stored.data() + 32, &bad_hi, sizeof(bad_hi));
  size_t offset = 0;
  auto r = uncertain::DecodePackedObject(stored, &offset, ubr);
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  EXPECT_NE(r.status().message().find("inverted"), std::string::npos);
}

TEST(RecordCodecTest, NegativeWeightsAreRejected) {
  Rng rng(28);
  const UncertainObject o = SkewedObject(&rng, 19, 2, 3);  // weights stored
  std::vector<uint8_t> bytes;
  uncertain::EncodePackedObject(o, o.region(), RecordPack::kLossless, &bytes);
  // Layout with both elisions off the table: header 24 B, region elided
  // (ubr == region), positions 3*2*8 B, then f64 weights. Flip the sign bit
  // of the first weight (IEEE-754 little-endian: top bit of byte 7).
  const size_t weight0 = 24 + 3 * 2 * 8;
  ASSERT_LT(weight0 + 8, bytes.size() + 1);
  bytes[weight0 + 7] |= 0x80;
  size_t offset = 0;
  auto r = uncertain::DecodePackedObject(bytes, &offset, o.region());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  EXPECT_NE(r.status().message().find("weight"), std::string::npos);
}

}  // namespace
}  // namespace pvdb
