// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Batched-Step-2 tests: Step2Batch grouping semantics, randomized
// property tests asserting EvaluateGroup probabilities are bit-identical to
// per-query Evaluate (shared-leaf query batches, degenerate pdfs,
// min_probability in {0, 0.1, 0.5}), Monte-Carlo agreement on the batch
// path, threshold early-exit behavior, per-group pdf I/O accounting against
// the sequential path, and the QueryScratch::ShrinkToFit bound.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/common/random.h"
#include "src/pv/pnnq.h"
#include "src/uncertain/datagen.h"

namespace pvdb::pv {
namespace {

// ---------------------------------------------------------------------------
// Step2Batch plan
// ---------------------------------------------------------------------------

TEST(Step2BatchTest, GroupsIdenticalCandidateSets) {
  Step2Batch plan;
  plan.Add(0, 7, {1, 2, 3});
  plan.Add(1, 7, {1, 2, 3});
  plan.Add(2, 9, {4, 5});
  plan.Add(3, 7, {1, 2, 3});
  plan.Add(4, 9, {5, 4});  // same ids, different order: distinct group
  ASSERT_EQ(plan.groups().size(), 3u);
  EXPECT_EQ(plan.groups()[0].queries, (std::vector<uint32_t>{0, 1, 3}));
  EXPECT_EQ(plan.groups()[0].leaf_key, 7u);
  EXPECT_EQ(plan.groups()[1].queries, (std::vector<uint32_t>{2}));
  EXPECT_EQ(plan.groups()[2].candidates,
            (std::vector<uncertain::ObjectId>{5, 4}));
}

TEST(Step2BatchTest, EqualSetsGroupAcrossLeaves) {
  // The leaf id locates candidates upstream; group identity is the exact
  // candidate vector, so neighboring leaves with equal survivors share a
  // sweep.
  Step2Batch plan;
  plan.Add(0, 1, {10, 20});
  plan.Add(1, 2, {10, 20});
  ASSERT_EQ(plan.groups().size(), 1u);
  EXPECT_EQ(plan.groups()[0].queries, (std::vector<uint32_t>{0, 1}));
}

TEST(Step2BatchTest, EmptyCandidateSetsGroupTogether) {
  Step2Batch plan;
  plan.Add(0, kNoLeafId, {});
  plan.Add(1, kNoLeafId, {});
  ASSERT_EQ(plan.groups().size(), 1u);
  EXPECT_TRUE(plan.groups()[0].candidates.empty());
}

// ---------------------------------------------------------------------------
// EvaluateGroup vs per-query Evaluate: bit-identity
// ---------------------------------------------------------------------------

void ExpectBitIdentical(const std::vector<PnnResult>& expected,
                        const std::vector<PnnResult>& actual) {
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].id, expected[i].id) << "slot " << i;
    EXPECT_EQ(actual[i].probability, expected[i].probability) << "slot " << i;
  }
}

/// Runs one randomized round: a synthetic database, a random candidate
/// subset shared by a jittered query cluster, and one bit-identity check of
/// the batch path against the per-query path at `min_probability`.
void RunPropertyRound(uint64_t seed, double min_probability) {
  Rng rng(seed);
  uncertain::SyntheticOptions synth;
  synth.dim = 1 + static_cast<int>(rng.NextU64() % 3);
  synth.count = 10 + static_cast<size_t>(rng.NextU64() % 30);
  synth.samples_per_object = 5 + static_cast<int>(rng.NextU64() % 40);
  synth.max_region_extent = 400;  // big regions: overlapping candidates
  synth.domain_hi = 1000;
  synth.seed = seed * 31 + 1;
  uncertain::Dataset db = uncertain::GenerateSynthetic(synth);
  PnnStep2Evaluator step2(&db);

  // Random candidate subset (EvaluateGroup's contract holds for any
  // candidate list, not only true Step-1 answers), in random order.
  std::vector<uncertain::ObjectId> candidates;
  for (const auto& o : db.objects()) {
    if (rng.NextU64() % 3 != 0) candidates.push_back(o.id());
  }
  if (candidates.empty()) candidates.push_back(db.objects().front().id());

  // A shared-leaf-style cluster: queries jittered around one anchor.
  geom::Point anchor(synth.dim);
  for (int d = 0; d < synth.dim; ++d) {
    anchor[d] = rng.NextUniform(0, 1000);
  }
  const size_t nq = 1 + rng.NextU64() % 9;
  std::vector<geom::Point> queries;
  for (size_t i = 0; i < nq; ++i) {
    geom::Point q = anchor;
    for (int d = 0; d < synth.dim; ++d) {
      q[d] += rng.NextUniform(-5, 5);
    }
    queries.push_back(q);
  }

  QueryScratch batch_scratch;
  Step2GroupOptions opts;
  opts.min_probability = min_probability;
  // Exercise query chunking on some rounds.
  opts.max_scratch_bytes = seed % 2 == 0 ? 4096 : 0;
  const auto grouped =
      step2.EvaluateGroup(queries, candidates, &batch_scratch, nullptr, opts);
  ASSERT_EQ(grouped.size(), queries.size());
  QueryScratch scratch;
  for (size_t i = 0; i < queries.size(); ++i) {
    SCOPED_TRACE("seed " + std::to_string(seed) + " query " +
                 std::to_string(i));
    const auto expected = step2.Evaluate(queries[i], candidates, &scratch,
                                         nullptr, min_probability);
    ExpectBitIdentical(expected, grouped[i]);
  }
}

TEST(EvaluateGroupTest, BitIdenticalToPerQueryEvaluateNoThreshold) {
  for (uint64_t seed = 1; seed <= 20; ++seed) RunPropertyRound(seed, 0.0);
}

TEST(EvaluateGroupTest, BitIdenticalUnderThresholds) {
  for (uint64_t seed = 21; seed <= 35; ++seed) {
    RunPropertyRound(seed, 0.1);
    RunPropertyRound(seed + 100, 0.5);
  }
}

TEST(EvaluateGroupTest, DegeneratePdfsBitIdentical) {
  // Point-mass objects (zero-extent regions: every instance at the same
  // position, maximal distance ties), a two-instance weighted pdf, and two
  // objects sharing a position — the tie-handling worst case.
  uncertain::Dataset db(geom::Rect::Cube(2, 0, 100));
  Rng rng(3);
  ASSERT_TRUE(db.Add(uncertain::UncertainObject::UniformSampled(
                        0, geom::Rect::Cube(2, 10, 10), 20, &rng))
                  .ok());
  ASSERT_TRUE(db.Add(uncertain::UncertainObject::UniformSampled(
                        1, geom::Rect::Cube(2, 10, 10), 20, &rng))
                  .ok());
  ASSERT_TRUE(db.Add(uncertain::UncertainObject(
                        2, geom::Rect(geom::Point{5, 5}, geom::Point{40, 40}),
                        {uncertain::Instance{geom::Point{5, 5}, 0.9},
                         uncertain::Instance{geom::Point{40, 40}, 0.1}}))
                  .ok());
  ASSERT_TRUE(db.Add(uncertain::UncertainObject::UniformSampled(
                        3, geom::Rect::Cube(2, 60, 60), 1, &rng))
                  .ok());
  PnnStep2Evaluator step2(&db);
  const std::vector<uncertain::ObjectId> candidates{0, 1, 2, 3};
  const std::vector<geom::Point> queries{
      geom::Point{10, 10}, geom::Point{0, 0}, geom::Point{60, 60},
      geom::Point{25, 25}};
  for (const double min_probability : {0.0, 0.1, 0.5}) {
    QueryScratch batch_scratch;
    Step2GroupOptions opts;
    opts.min_probability = min_probability;
    const auto grouped =
        step2.EvaluateGroup(queries, candidates, &batch_scratch, nullptr, opts);
    QueryScratch scratch;
    for (size_t i = 0; i < queries.size(); ++i) {
      SCOPED_TRACE("min_probability " + std::to_string(min_probability) +
                   " query " + std::to_string(i));
      ExpectBitIdentical(step2.Evaluate(queries[i], candidates, &scratch,
                                        nullptr, min_probability),
                         grouped[i]);
    }
  }
}

TEST(EvaluateGroupTest, EmptyQueriesAndCandidates) {
  Rng rng(4);
  uncertain::Dataset db(geom::Rect::Cube(2, 0, 100));
  ASSERT_TRUE(db.Add(uncertain::UncertainObject::UniformSampled(
                        0, geom::Rect::Cube(2, 10, 20), 5, &rng))
                  .ok());
  PnnStep2Evaluator step2(&db);
  QueryScratch scratch;
  EXPECT_TRUE(step2
                  .EvaluateGroup({}, std::vector<uncertain::ObjectId>{0},
                                 &scratch)
                  .empty());
  const std::vector<geom::Point> queries{geom::Point{1, 1}};
  const auto out = step2.EvaluateGroup(queries, {}, &scratch);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].empty());
}

// ---------------------------------------------------------------------------
// Monte-Carlo agreement on the batch path
// ---------------------------------------------------------------------------

TEST(EvaluateGroupTest, MatchesMonteCarloEstimator) {
  uncertain::SyntheticOptions synth;
  synth.dim = 2;
  synth.count = 12;
  synth.samples_per_object = 300;
  synth.max_region_extent = 400;
  synth.domain_hi = 1000;
  synth.seed = 11;
  uncertain::Dataset db = uncertain::GenerateSynthetic(synth);
  PnnStep2Evaluator step2(&db);
  const std::vector<uncertain::ObjectId> candidates = db.Ids();
  Rng rng(12);
  std::vector<geom::Point> queries;
  for (int i = 0; i < 6; ++i) {
    queries.push_back(geom::Point{rng.NextUniform(200, 800),
                                  rng.NextUniform(200, 800)});
  }
  QueryScratch scratch;
  const auto grouped = step2.EvaluateGroup(queries, candidates, &scratch);
  for (size_t i = 0; i < queries.size(); ++i) {
    const auto mc = step2.EstimateByMonteCarlo(queries[i], candidates,
                                               /*trials=*/20000, /*seed=*/i);
    for (const auto& e : grouped[i]) {
      double mc_p = 0;
      for (const auto& m : mc) {
        if (m.id == e.id) mc_p = m.probability;
      }
      EXPECT_NEAR(e.probability, mc_p, 0.02)
          << "object " << e.id << " at query " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Threshold early-exit
// ---------------------------------------------------------------------------

TEST(EvaluateGroupTest, EarlyExitPrunesDominatedPairsAndAnswersMatch) {
  // One cluster of near candidates and several clearly dominated far ones:
  // the far candidates' survival bounds collapse to zero and must be
  // retired by the sweep, without touching the surviving probabilities.
  Rng rng(5);
  uncertain::Dataset db(geom::Rect::Cube(2, 0, 1000));
  for (uint64_t id = 0; id < 3; ++id) {
    ASSERT_TRUE(db.Add(uncertain::UncertainObject::UniformSampled(
                          id, geom::Rect::Cube(2, 10 + 5 * id, 30 + 5 * id),
                          40, &rng))
                    .ok());
  }
  for (uint64_t id = 3; id < 8; ++id) {
    ASSERT_TRUE(db.Add(uncertain::UncertainObject::UniformSampled(
                          id, geom::Rect::Cube(2, 800 + 10 * id,
                                               810 + 10 * id),
                          40, &rng))
                    .ok());
  }
  PnnStep2Evaluator step2(&db);
  const std::vector<uncertain::ObjectId> candidates = db.Ids();
  std::vector<geom::Point> queries;
  for (int i = 0; i < 8; ++i) {
    queries.push_back(geom::Point{rng.NextUniform(0, 40),
                                  rng.NextUniform(0, 40)});
  }
  QueryScratch batch_scratch;
  Step2BatchStats stats;
  const auto grouped = step2.EvaluateGroup(queries, candidates, &batch_scratch,
                                           nullptr, {}, &stats);
  EXPECT_GT(stats.pairs_pruned, 0) << "dominated candidates must exit early";
  QueryScratch scratch;
  for (size_t i = 0; i < queries.size(); ++i) {
    SCOPED_TRACE("query " + std::to_string(i));
    ExpectBitIdentical(step2.Evaluate(queries[i], candidates, &scratch),
                       grouped[i]);
  }
}

// ---------------------------------------------------------------------------
// Pdf page charges: once per candidate per group
// ---------------------------------------------------------------------------

TEST(EvaluateGroupTest, ChargesPdfPagesOncePerCandidatePerGroup) {
  uncertain::SyntheticOptions synth;
  synth.dim = 3;
  synth.count = 10;
  synth.samples_per_object = 500;
  synth.seed = 13;
  uncertain::Dataset db = uncertain::GenerateSynthetic(synth);
  PnnStep2Evaluator step2(&db);
  const std::vector<uncertain::ObjectId> candidates = db.Ids();
  std::vector<geom::Point> queries(
      7, geom::Point{500, 500, 500});

  int64_t per_group = 0;
  for (uncertain::ObjectId id : candidates) {
    per_group += step2.RecordPages(*db.Find(id));
  }

  MetricRegistry batch_io;
  QueryScratch scratch;
  step2.EvaluateGroup(queries, candidates, &scratch,
                      batch_io.Register(PnnCounters::kPdfPagesRead));
  EXPECT_EQ(batch_io.Get(PnnCounters::kPdfPagesRead), per_group)
      << "the batch path fetches each candidate record once per group";

  // Regression comparison: the sequential path charges the same records
  // once per query — group size times the batch charge.
  MetricRegistry seq_io;
  for (const auto& q : queries) {
    step2.Evaluate(q, candidates, &seq_io);
  }
  EXPECT_EQ(seq_io.Get(PnnCounters::kPdfPagesRead),
            per_group * static_cast<int64_t>(queries.size()));
}

// ---------------------------------------------------------------------------
// QueryScratch::ShrinkToFit
// ---------------------------------------------------------------------------

TEST(QueryScratchTest, ShrinkToFitEnforcesBound) {
  uncertain::SyntheticOptions synth;
  synth.dim = 2;
  synth.count = 20;
  synth.samples_per_object = 100;
  synth.seed = 17;
  uncertain::Dataset db = uncertain::GenerateSynthetic(synth);
  PnnStep2Evaluator step2(&db);
  QueryScratch scratch;
  const std::vector<geom::Point> queries(8, geom::Point{500, 500});
  step2.EvaluateGroup(queries, db.Ids(), &scratch);
  const size_t grown = scratch.ApproxBytes();
  ASSERT_GT(grown, 0u);

  // Under the bound: a no-op, arenas stay warm.
  scratch.ShrinkToFit(grown);
  EXPECT_EQ(scratch.ApproxBytes(), grown);

  // Over the bound: everything is released, so the arena respects the cap.
  scratch.ShrinkToFit(grown - 1);
  EXPECT_LE(scratch.ApproxBytes(), grown - 1);
  EXPECT_EQ(scratch.ApproxBytes(), 0u);

  // The emptied scratch still serves queries (and regrows on demand).
  const auto again = step2.EvaluateGroup(queries, db.Ids(), &scratch);
  ASSERT_EQ(again.size(), queries.size());
  EXPECT_GT(scratch.ApproxBytes(), 0u);
}

}  // namespace
}  // namespace pvdb::pv
