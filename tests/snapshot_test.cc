// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Snapshot lifecycle tests: the storage container (writer/reader round
// trip, header and section checksums), corrupt-input hardening (truncated
// file, bad magic, wrong version, checksum mismatch — all descriptive
// Status, never a crash), and the Build → Seal → Save → Open round trip —
// property-tested over randomized datasets (incl. degenerate pdfs) for
// bit-identical answers between the live index and the opened snapshot,
// across Seal()/Open() and batch_step2 on/off.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/pv/index_snapshot.h"
#include "src/pv/pnnq.h"
#include "src/pv/pv_index_builder.h"
#include "src/service/query_engine.h"
#include "src/storage/snapshot_file.h"
#include "src/uncertain/datagen.h"

namespace pvdb {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "pvdb_" + name + "_" +
         std::to_string(::getpid()) + ".snap";
}

/// RAII temp file cleanup.
struct TempFile {
  explicit TempFile(std::string p) : path(std::move(p)) {}
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

// ---------------------------------------------------------------------------
// storage::SnapshotWriter / SnapshotReader (container level)
// ---------------------------------------------------------------------------

std::vector<uint8_t> Bytes(std::initializer_list<uint8_t> b) { return b; }

TEST(SnapshotFileTest, SectionsRoundTripThroughImageAndFile) {
  storage::SnapshotWriter writer;
  writer.AddSection(1, Bytes({1, 2, 3}));
  writer.AddSection(7, Bytes({}));
  writer.AddSection(2, Bytes({9, 8, 7, 6, 5}));
  const std::vector<uint8_t> image = writer.Finish();

  auto check = [](const storage::SnapshotReader& r) {
    auto s1 = r.Section(1);
    ASSERT_TRUE(s1.ok());
    EXPECT_EQ(std::vector<uint8_t>(s1.value().begin(), s1.value().end()),
              Bytes({1, 2, 3}));
    auto s7 = r.Section(7);
    ASSERT_TRUE(s7.ok());
    EXPECT_TRUE(s7.value().empty());
    auto s2 = r.Section(2);
    ASSERT_TRUE(s2.ok());
    EXPECT_EQ(s2.value().size(), 5u);
    EXPECT_EQ(r.Section(3).status().code(), StatusCode::kNotFound);
    EXPECT_TRUE(r.VerifyAllSections().ok());
  };

  auto from_image = storage::SnapshotReader::FromImage(image);
  ASSERT_TRUE(from_image.ok()) << from_image.status().ToString();
  EXPECT_FALSE(from_image.value()->mapped());
  check(*from_image.value());

  TempFile file(TempPath("container"));
  ASSERT_TRUE(storage::SnapshotWriter::WriteFile(file.path, image).ok());
  auto from_file = storage::SnapshotReader::OpenFile(file.path);
  ASSERT_TRUE(from_file.ok()) << from_file.status().ToString();
  EXPECT_TRUE(from_file.value()->mapped());
  EXPECT_EQ(from_file.value()->file_bytes(), image.size());
  check(*from_file.value());
}

TEST(SnapshotFileTest, MissingFileIsIOError) {
  auto r = storage::SnapshotReader::OpenFile("/nonexistent/pv.snap");
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST(SnapshotFileTest, RejectsTruncatedImage) {
  storage::SnapshotWriter writer;
  writer.AddSection(1, Bytes({1, 2, 3, 4}));
  std::vector<uint8_t> image = writer.Finish();

  // Below the superblock.
  auto tiny = storage::SnapshotReader::FromImage(
      std::vector<uint8_t>(image.begin(), image.begin() + 8));
  EXPECT_EQ(tiny.status().code(), StatusCode::kCorruption);
  EXPECT_NE(tiny.status().message().find("truncated"), std::string::npos);

  // Superblock intact but payload cut off: declared size disagrees.
  std::vector<uint8_t> cut(image.begin(), image.end() - 4);
  auto r = storage::SnapshotReader::FromImage(cut);
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  EXPECT_NE(r.status().message().find("truncated"), std::string::npos);
}

TEST(SnapshotFileTest, RejectsBadMagic) {
  storage::SnapshotWriter writer;
  writer.AddSection(1, Bytes({1}));
  std::vector<uint8_t> image = writer.Finish();
  image[0] ^= 0xFF;
  auto r = storage::SnapshotReader::FromImage(image);
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  EXPECT_NE(r.status().message().find("magic"), std::string::npos);
}

TEST(SnapshotFileTest, RejectsWrongVersion) {
  storage::SnapshotWriter writer;
  writer.AddSection(1, Bytes({1}));
  std::vector<uint8_t> image = writer.Finish();
  image[8] += 1;  // version field (little-endian u32 at offset 8)
  auto r = storage::SnapshotReader::FromImage(image);
  EXPECT_EQ(r.status().code(), StatusCode::kNotSupported);
  EXPECT_NE(r.status().message().find("version"), std::string::npos);
}

TEST(SnapshotFileTest, DetectsHeaderAndSectionCorruption) {
  storage::SnapshotWriter writer;
  writer.AddSection(1, Bytes({1, 2, 3, 4, 5, 6, 7, 8}));
  const std::vector<uint8_t> image = writer.Finish();

  // Flip a byte in the section table: caught at open (header checksum).
  std::vector<uint8_t> bad_table = image;
  bad_table[40] ^= 0x01;
  auto r1 = storage::SnapshotReader::FromImage(bad_table);
  EXPECT_EQ(r1.status().code(), StatusCode::kCorruption);
  EXPECT_NE(r1.status().message().find("checksum"), std::string::npos);

  // Flip a byte in the payload: caught by section verification.
  std::vector<uint8_t> bad_payload = image;
  bad_payload.back() ^= 0x01;
  auto r2 = storage::SnapshotReader::FromImage(bad_payload);
  ASSERT_TRUE(r2.ok()) << "payload is not covered by the header checksum";
  EXPECT_EQ(r2.value()->VerifySection(1).code(), StatusCode::kCorruption);
  EXPECT_EQ(r2.value()->VerifyAllSections().code(), StatusCode::kCorruption);
}

// ---------------------------------------------------------------------------
// PvIndexBuilder → IndexSnapshot round trip
// ---------------------------------------------------------------------------

/// A randomized database with adversarial shapes mixed in: degenerate
/// (point) uncertainty regions with single-instance pdfs, and duplicate
/// positions.
uncertain::Dataset RandomDatabase(uint64_t seed, int dim, size_t count) {
  uncertain::SyntheticOptions synth;
  synth.dim = dim;
  synth.count = count;
  synth.samples_per_object = 16;
  synth.max_region_extent = 400.0;
  synth.domain_hi = 1000.0;
  synth.seed = seed;
  uncertain::Dataset db = uncertain::GenerateSynthetic(synth);
  Rng rng(seed ^ 0x9E3779B97F4A7C15ull);
  // Degenerate pdfs: a handful of point objects (region collapsed to one
  // coordinate, pdf of a single certain instance).
  for (int k = 0; k < 8; ++k) {
    geom::Point p(dim);
    for (int d = 0; d < dim; ++d) p[d] = rng.NextUniform(0, 1000);
    const uncertain::ObjectId id = 900000 + static_cast<uint64_t>(k);
    EXPECT_TRUE(db.Add(uncertain::UncertainObject(
                           id, geom::Rect::FromPoint(p),
                           {uncertain::Instance{p, 1.0}}))
                    .ok());
  }
  return db;
}

std::vector<geom::Point> RandomQueries(uint64_t seed, int dim, size_t n,
                                       double lo, double hi) {
  Rng rng(seed);
  std::vector<geom::Point> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    geom::Point q(dim);
    for (int d = 0; d < dim; ++d) q[d] = rng.NextUniform(lo, hi);
    out.push_back(q);
  }
  return out;
}

void ExpectSameObject(const uncertain::UncertainObject& a,
                      const uncertain::UncertainObject& b) {
  ASSERT_EQ(a.id(), b.id());
  ASSERT_EQ(a.region(), b.region());
  ASSERT_EQ(a.pdf().size(), b.pdf().size());
  for (size_t i = 0; i < a.pdf().size(); ++i) {
    EXPECT_EQ(a.pdf()[i].position, b.pdf()[i].position);
    EXPECT_EQ(a.pdf()[i].probability, b.pdf()[i].probability);
  }
}

TEST(SnapshotRoundTripTest, SealedAndOpenedAnswersBitIdenticalToLiveIndex) {
  for (const uint64_t seed : {11ull, 22ull, 33ull}) {
    for (const int dim : {2, 3}) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " dim " +
                   std::to_string(dim));
      uncertain::Dataset db = RandomDatabase(seed, dim, 200);
      auto builder = pv::PvIndexBuilder::Build(db);
      ASSERT_TRUE(builder.ok()) << builder.status().ToString();
      const pv::PvIndex& index = builder.value()->index();

      // Both arrival paths: in-memory seal and file round trip (mmap).
      auto sealed = builder.value()->Seal();
      ASSERT_TRUE(sealed.ok()) << sealed.status().ToString();
      TempFile file(TempPath("roundtrip"));
      ASSERT_TRUE(builder.value()->Save(file.path).ok());
      auto opened =
          pv::IndexSnapshot::Open(file.path, {.verify_payload = true});
      ASSERT_TRUE(opened.ok()) << opened.status().ToString();
      EXPECT_TRUE(opened.value()->mapped());
      EXPECT_FALSE(sealed.value()->mapped());
      EXPECT_EQ(opened.value()->object_count(), db.size());

      // Step-1 and Step-2 parity per query, against the library pipeline.
      pv::PnnStep2Evaluator live_step2(&db);
      const auto queries = RandomQueries(seed * 7, dim, 64, 0, 1000);
      for (const auto& q : queries) {
        const auto expected = index.QueryPossibleNN(q).value();
        for (const auto& snap : {sealed.value(), opened.value()}) {
          const auto got = snap->QueryPossibleNN(q).value();
          ASSERT_EQ(got, expected);
          // Step 2 off the snapshot's records, bit-identical to Step 2 off
          // the dataset.
          pv::PnnStep2Evaluator snap_step2(snap.get());
          const auto live = live_step2.Evaluate(q, expected);
          const auto from_snap = snap_step2.Evaluate(q, got);
          ASSERT_EQ(live.size(), from_snap.size());
          for (size_t i = 0; i < live.size(); ++i) {
            EXPECT_EQ(live[i].id, from_snap[i].id);
            EXPECT_EQ(live[i].probability, from_snap[i].probability);
          }
        }
      }

      // Record round trip: every stored object is byte-faithful.
      for (const auto& o : db.objects()) {
        auto copy = opened.value()->GetObject(o.id());
        ASSERT_TRUE(copy.ok()) << copy.status().ToString();
        ExpectSameObject(o, copy.value());
        ASSERT_NE(opened.value()->FindObject(o.id()), nullptr);
        EXPECT_EQ(opened.value()->GetUbr(o.id()).value(),
                  index.GetUbr(o.id()).value());
      }
      EXPECT_EQ(opened.value()->FindObject(123456789), nullptr);
    }
  }
}

TEST(SnapshotRoundTripTest, EngineOverSnapshotMatchesEngineOverPvIndex) {
  for (const bool batch_step2 : {true, false}) {
    SCOPED_TRACE(batch_step2 ? "batch_step2 on" : "batch_step2 off");
    uncertain::Dataset db = RandomDatabase(77, 3, 300);
    auto builder = pv::PvIndexBuilder::Build(db);
    ASSERT_TRUE(builder.ok());

    service::QueryEngineOptions options;
    options.threads = 2;
    options.batch_step2 = batch_step2;
    service::EngineBackends pv_backends;
    pv_backends.pv = &builder.value()->index();
    auto pv_engine = service::QueryEngine::Create(&db, pv_backends, options);
    ASSERT_TRUE(pv_engine.ok());

    TempFile file(TempPath("engine"));
    ASSERT_TRUE(builder.value()->Save(file.path).ok());
    auto snapshot = pv::IndexSnapshot::Open(file.path);
    ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
    auto snap_engine =
        service::QueryEngine::CreateFromSnapshot(snapshot.value(), options);
    ASSERT_TRUE(snap_engine.ok()) << snap_engine.status().ToString();
    EXPECT_EQ(snap_engine.value()->active_backend(),
              service::BackendKind::kSnapshot);

    // Clustered queries so the grouped path actually sweeps groups.
    Rng rng(5);
    std::vector<geom::Point> queries;
    for (int c = 0; c < 6; ++c) {
      geom::Point anchor{rng.NextUniform(50, 950), rng.NextUniform(50, 950),
                         rng.NextUniform(50, 950)};
      for (int i = 0; i < 12; ++i) {
        geom::Point q = anchor;
        for (int d = 0; d < 3; ++d) q[d] += rng.NextUniform(-1, 1);
        queries.push_back(q);
      }
    }
    const std::vector<service::QueryRequest> requests =
        service::PnnRequests(queries);
    const auto expected = pv_engine.value()->ExecuteBatch(requests);
    const auto got = snap_engine.value()->ExecuteBatch(requests);
    ASSERT_EQ(expected.size(), got.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      SCOPED_TRACE("query " + std::to_string(i));
      ASSERT_TRUE(expected[i].status.ok());
      ASSERT_TRUE(got[i].status.ok()) << got[i].status.ToString();
      ASSERT_EQ(expected[i].results.size(), got[i].results.size());
      for (size_t j = 0; j < expected[i].results.size(); ++j) {
        EXPECT_EQ(expected[i].results[j].id, got[i].results[j].id);
        EXPECT_EQ(expected[i].results[j].probability,
                  got[i].results[j].probability);
      }
    }
    // Warm re-run through the snapshot engine's leaf cache stays identical.
    const auto warm = snap_engine.value()->ExecuteBatch(requests);
    for (size_t i = 0; i < queries.size(); ++i) {
      ASSERT_EQ(warm[i].results.size(), got[i].results.size());
      for (size_t j = 0; j < warm[i].results.size(); ++j) {
        EXPECT_EQ(warm[i].results[j].probability,
                  got[i].results[j].probability);
      }
    }
    // Zero-copy serving (v2 snapshots) never materializes leaf blocks, so
    // the block hit/miss meters stay untouched — the mmap is its own cache.
    // With grouping on the cache still earns its keep memoizing resolved
    // Step-2 plans (plan-only entries with real byte accounting).
    EXPECT_EQ(snap_engine.value()->cache()->hits(), 0);
    EXPECT_EQ(snap_engine.value()->cache()->misses(), 0);
    if (batch_step2) {
      EXPECT_GT(snap_engine.value()->cache()->size(), 0u);
      EXPECT_GT(snap_engine.value()->cache()->bytes(), 0u);
    }

    // The decode-and-cache block path stays available behind the toggle and
    // answers bit-identically to the zero-copy path.
    service::QueryEngineOptions decode_options = options;
    decode_options.use_leaf_views = false;
    auto decode_engine = service::QueryEngine::CreateFromSnapshot(
        snapshot.value(), decode_options);
    ASSERT_TRUE(decode_engine.ok());
    const auto decoded = decode_engine.value()->ExecuteBatch(requests);
    ASSERT_EQ(decoded.size(), got.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      ASSERT_EQ(decoded[i].results.size(), got[i].results.size());
      for (size_t j = 0; j < decoded[i].results.size(); ++j) {
        EXPECT_EQ(decoded[i].results[j].id, got[i].results[j].id);
        EXPECT_EQ(decoded[i].results[j].probability,
                  got[i].results[j].probability);
      }
    }
    // Block caching is live on the decode path: a warm re-run hits.
    decode_engine.value()->ExecuteBatch(requests);
    EXPECT_GT(decode_engine.value()->cache()->hits(), 0);
    EXPECT_GT(decode_engine.value()->cache()->bytes(), 0u);
  }
}

TEST(SnapshotRoundTripTest, ResealAfterBuilderMutationsReflectsUpdates) {
  uncertain::Dataset db = RandomDatabase(5, 2, 150);
  auto builder = pv::PvIndexBuilder::Build(db);
  ASSERT_TRUE(builder.ok());
  auto before = builder.value()->Seal();
  ASSERT_TRUE(before.ok());

  // Mutate through the builder: one insert, one delete.
  Rng rng(123);
  const uncertain::ObjectId new_id = 555555;
  ASSERT_TRUE(db.Add(uncertain::UncertainObject::UniformSampled(
                         new_id, geom::Rect(geom::Point{400, 400},
                                            geom::Point{420, 420}),
                         10, &rng))
                  .ok());
  ASSERT_TRUE(builder.value()->Insert(db, new_id).ok());
  const uncertain::UncertainObject removed = *db.Find(db.objects()[0].id());
  ASSERT_TRUE(db.Remove(removed.id()).ok());
  ASSERT_TRUE(builder.value()->Delete(db, removed).ok());

  auto after = builder.value()->Seal();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(before.value()->object_count(), after.value()->object_count());
  EXPECT_NE(before.value()->FindObject(removed.id()), nullptr);
  EXPECT_EQ(after.value()->FindObject(removed.id()), nullptr);
  EXPECT_NE(after.value()->FindObject(new_id), nullptr);

  // The re-sealed snapshot answers like the mutated live index.
  const auto queries = RandomQueries(99, 2, 32, 0, 1000);
  for (const auto& q : queries) {
    EXPECT_EQ(after.value()->QueryPossibleNN(q).value(),
              builder.value()->index().QueryPossibleNN(q).value());
  }
}

TEST(SnapshotRoundTripTest, EmptyDatabaseSealsAndServes) {
  uncertain::Dataset db(geom::Rect::Cube(2, 0, 100));
  auto builder = pv::PvIndexBuilder::Build(db);
  ASSERT_TRUE(builder.ok()) << builder.status().ToString();
  auto snap = builder.value()->Seal();
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_EQ(snap.value()->object_count(), 0u);
  const auto step1 =
      snap.value()->QueryPossibleNN(geom::Point{50, 50});
  ASSERT_TRUE(step1.ok());
  EXPECT_TRUE(step1.value().empty());
}

// ---------------------------------------------------------------------------
// Format v2: version compatibility, SoA views, packed records
// ---------------------------------------------------------------------------

TEST(SnapshotFormatV2Test, V1SealStillOpensAndAnswersIdentically) {
  // Backward compat: the current builder can emit the exact legacy layout,
  // and the current reader serves it (through the decode path) with answers
  // bit-identical to the default v2 seal.
  uncertain::Dataset db = RandomDatabase(41, 3, 150);
  auto builder = pv::PvIndexBuilder::Build(db);
  ASSERT_TRUE(builder.ok());

  TempFile v1_file(TempPath("v1"));
  TempFile v2_file(TempPath("v2"));
  ASSERT_TRUE(builder.value()->Save(v1_file.path, {.format_version = 1}).ok());
  ASSERT_TRUE(builder.value()->Save(v2_file.path).ok());

  auto v1 = pv::IndexSnapshot::Open(v1_file.path, {.verify_payload = true});
  auto v2 = pv::IndexSnapshot::Open(v2_file.path, {.verify_payload = true});
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();
  EXPECT_EQ(v1.value()->format_version(), 1u);
  EXPECT_EQ(v2.value()->format_version(), 2u);
  EXPECT_FALSE(v1.value()->has_leaf_soa());
  EXPECT_TRUE(v2.value()->has_leaf_soa());

  // v1 has no zero-copy views, and says so descriptively.
  const auto probe = RandomQueries(43, 3, 1, 0, 1000)[0];
  const auto leaf = v1.value()->FindLeaf(probe);
  ASSERT_TRUE(leaf.ok());
  const auto view = v1.value()->ReadLeafBlockView(leaf.value().id);
  EXPECT_EQ(view.status().code(), StatusCode::kNotSupported);
  EXPECT_NE(view.status().message().find("re-seal"), std::string::npos);

  // Decoded v1 serving == zero-copy v2 serving, bit for bit — the
  // view-prune vs decode-prune property at the file level.
  for (const auto& q : RandomQueries(44, 3, 128, -50, 1050)) {
    const auto a = v1.value()->QueryPossibleNN(q);
    const auto b = v2.value()->QueryPossibleNN(q);
    ASSERT_EQ(a.ok(), b.ok());
    if (a.ok()) EXPECT_EQ(a.value(), b.value());
  }

  // And per leaf: the v2 view enumerates exactly the entries the v1 decode
  // produces, in the same order.
  for (const auto& q : RandomQueries(45, 3, 16, 0, 1000)) {
    const auto ref1 = v1.value()->FindLeaf(q);
    const auto ref2 = v2.value()->FindLeaf(q);
    ASSERT_TRUE(ref1.ok() && ref2.ok());
    ASSERT_EQ(ref1.value().id, ref2.value().id);
    const auto block = v1.value()->ReadLeafBlock(ref1.value().id);
    const auto v = v2.value()->ReadLeafBlockView(ref2.value().id);
    ASSERT_TRUE(block.ok() && v.ok());
    ASSERT_EQ(v.value().count, block.value().size());
    ASSERT_EQ(v.value().dim, 3);
    for (size_t i = 0; i < v.value().count; ++i) {
      const pv::LeafEntry a = block.value().At(i);
      const pv::LeafEntry b = v.value().At(i);
      EXPECT_EQ(a.id, b.id);
      EXPECT_EQ(a.region, b.region);
    }
  }
}

TEST(SnapshotFormatV2Test, SealRejectsUnwritableVersionsAndV1Packing) {
  uncertain::Dataset db = RandomDatabase(46, 2, 40);
  auto builder = pv::PvIndexBuilder::Build(db);
  ASSERT_TRUE(builder.ok());

  auto future = builder.value()->SealImage({.format_version = 3});
  EXPECT_EQ(future.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(future.status().message().find("version"), std::string::npos);

  auto packed_v1 = builder.value()->SealImage(
      {.format_version = 1, .pack = uncertain::RecordPack::kLossless});
  EXPECT_EQ(packed_v1.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(packed_v1.status().message().find("version 2"),
            std::string::npos);
}

TEST(SnapshotFormatV2Test, FutureVersionOpenIsDescriptiveNotChecksum) {
  // Forward compat: a file stamped with a future format version must fail
  // with a version message — the version gate runs before any checksum
  // comparison, so the caller learns to upgrade, not to suspect bit rot.
  uncertain::Dataset db = RandomDatabase(47, 2, 40);
  auto builder = pv::PvIndexBuilder::Build(db);
  ASSERT_TRUE(builder.ok());
  auto image = builder.value()->SealImage();
  ASSERT_TRUE(image.ok());
  std::vector<uint8_t> bytes = std::move(image).value();
  bytes[8] = 9;  // version u32 at superblock offset 8
  auto snap = pv::IndexSnapshot::FromImage(bytes);
  EXPECT_EQ(snap.status().code(), StatusCode::kNotSupported);
  EXPECT_NE(snap.status().message().find("version"), std::string::npos);
  EXPECT_EQ(snap.status().message().find("checksum"), std::string::npos);
}

TEST(SnapshotFormatV2Test, PackedRecordsRoundTripThroughSnapshot) {
  Rng rng(48);
  uncertain::Dataset db = RandomDatabase(49, 3, 120);
  // Mix in objects with non-uniform weights so the weight array is
  // actually exercised (RandomDatabase emits uniform-sampled pdfs).
  for (int k = 0; k < 10; ++k) {
    geom::Point lo(3), hi(3);
    for (int d = 0; d < 3; ++d) {
      lo[d] = rng.NextUniform(0, 900);
      hi[d] = lo[d] + rng.NextUniform(1, 80);
    }
    const geom::Rect region(lo, hi);
    std::vector<uncertain::Instance> pdf;
    double total = 0;
    std::vector<double> w;
    for (int i = 0; i < 9; ++i) {
      w.push_back(rng.NextUniform(0.1, 1.0));
      total += w.back();
    }
    for (int i = 0; i < 9; ++i) {
      geom::Point p(3);
      for (int d = 0; d < 3; ++d) {
        p[d] = rng.NextUniform(region.lo(d), region.hi(d));
      }
      pdf.push_back(uncertain::Instance{p, w[i] / total});
    }
    ASSERT_TRUE(db.Add(uncertain::UncertainObject(
                           800000 + static_cast<uint64_t>(k), region,
                           std::move(pdf)))
                    .ok());
  }
  auto builder = pv::PvIndexBuilder::Build(db);
  ASSERT_TRUE(builder.ok());

  // Lossless: every record decodes bit-identically to the raw seal.
  TempFile lossless_file(TempPath("packed_lossless"));
  ASSERT_TRUE(builder.value()
                  ->Save(lossless_file.path,
                         {.pack = uncertain::RecordPack::kLossless})
                  .ok());
  auto lossless =
      pv::IndexSnapshot::Open(lossless_file.path, {.verify_payload = true});
  ASSERT_TRUE(lossless.ok()) << lossless.status().ToString();
  EXPECT_TRUE(lossless.value()->packed_records());
  for (const auto& o : db.objects()) {
    auto copy = lossless.value()->GetObject(o.id());
    ASSERT_TRUE(copy.ok()) << copy.status().ToString();
    ExpectSameObject(o, copy.value());
    ASSERT_NE(lossless.value()->FindObject(o.id()), nullptr);
  }

  // Lossless packing leaves every query answer bit-identical (Step 1 reads
  // leaf sections, Step 2 reads the decoded records).
  auto raw = builder.value()->Seal();
  ASSERT_TRUE(raw.ok());
  EXPECT_FALSE(raw.value()->packed_records());
  pv::PnnStep2Evaluator raw_step2(raw.value().get());
  pv::PnnStep2Evaluator packed_step2(lossless.value().get());
  for (const auto& q : RandomQueries(50, 3, 48, 0, 1000)) {
    const auto cands = raw.value()->QueryPossibleNN(q).value();
    ASSERT_EQ(lossless.value()->QueryPossibleNN(q).value(), cands);
    const auto a = raw_step2.Evaluate(q, cands);
    const auto b = packed_step2.Evaluate(q, cands);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, b[i].id);
      EXPECT_EQ(a[i].probability, b[i].probability);
    }
  }

  // Float32: coordinates within the documented ulp bound, uniform weights
  // exact, and the file strictly smaller than both raw and lossless.
  TempFile f32_file(TempPath("packed_f32"));
  ASSERT_TRUE(builder.value()
                  ->Save(f32_file.path,
                         {.pack = uncertain::RecordPack::kFloat32})
                  .ok());
  auto f32 = pv::IndexSnapshot::Open(f32_file.path, {.verify_payload = true});
  ASSERT_TRUE(f32.ok()) << f32.status().ToString();
  for (const auto& o : db.objects()) {
    auto copy = f32.value()->GetObject(o.id());
    ASSERT_TRUE(copy.ok());
    ASSERT_EQ(copy.value().pdf().size(), o.pdf().size());
    EXPECT_EQ(copy.value().region(), o.region());
    for (size_t i = 0; i < o.pdf().size(); ++i) {
      for (int d = 0; d < 3; ++d) {
        const double side = o.region().hi(d) - o.region().lo(d);
        EXPECT_LE(std::abs(copy.value().pdf()[i].position[d] -
                           o.pdf()[i].position[d]),
                  side * 0x1p-23);
      }
    }
  }
  const size_t raw_bytes = lossless.value()->file_bytes();
  EXPECT_LT(f32.value()->file_bytes(), raw_bytes);
  EXPECT_LT(raw_bytes, builder.value()->SealImage().value().size());
}

// ---------------------------------------------------------------------------
// Corrupt snapshot hardening (pv layer)
// ---------------------------------------------------------------------------

class SnapshotCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    uncertain::Dataset db = RandomDatabase(3, 2, 60);
    auto builder = pv::PvIndexBuilder::Build(db);
    ASSERT_TRUE(builder.ok());
    auto image = builder.value()->SealImage();
    ASSERT_TRUE(image.ok());
    image_ = std::move(image).value();
  }

  /// Opens a mutated copy of the image through a real file (the mmap path).
  Result<std::shared_ptr<const pv::IndexSnapshot>> OpenMutated(
      size_t flip_offset, const pv::SnapshotOpenOptions& options = {},
      size_t truncate_to = 0) {
    std::vector<uint8_t> bytes = image_;
    if (truncate_to > 0) bytes.resize(truncate_to);
    if (flip_offset != 0) bytes[flip_offset] ^= 0x01;
    TempFile file(TempPath("corrupt"));
    PVDB_RETURN_NOT_OK(storage::SnapshotWriter::WriteFile(
        file.path, std::span<const uint8_t>(bytes.data(), bytes.size())));
    return pv::IndexSnapshot::Open(file.path, options);
  }

  std::vector<uint8_t> image_;
};

TEST_F(SnapshotCorruptionTest, IntactImageOpens) {
  auto snap = OpenMutated(0, {.verify_payload = true});
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
}

TEST_F(SnapshotCorruptionTest, TruncationIsDetected) {
  auto snap = OpenMutated(0, {}, image_.size() / 2);
  EXPECT_EQ(snap.status().code(), StatusCode::kCorruption);
  EXPECT_NE(snap.status().message().find("truncated"), std::string::npos);
}

TEST_F(SnapshotCorruptionTest, BadMagicIsDetected) {
  auto snap = OpenMutated(3);
  EXPECT_EQ(snap.status().code(), StatusCode::kCorruption);
  EXPECT_NE(snap.status().message().find("magic"), std::string::npos);
}

TEST_F(SnapshotCorruptionTest, WrongVersionIsDetected) {
  std::vector<uint8_t> bytes = image_;
  bytes[8] = 0x2A;  // version u32 at offset 8 → 42
  auto reader = storage::SnapshotReader::FromImage(bytes);
  EXPECT_EQ(reader.status().code(), StatusCode::kNotSupported);
  EXPECT_NE(reader.status().message().find("version"), std::string::npos);
}

TEST_F(SnapshotCorruptionTest, StructuralChecksumMismatchFailsOpen) {
  // Flip one byte inside the nodes section: the default Open verifies the
  // structural sections it descends through, so this must fail even
  // without verify_payload. The section's position in the image comes from
  // a container read of the intact copy (pointer offset from image start).
  auto reader = storage::SnapshotReader::FromImage(image_);
  ASSERT_TRUE(reader.ok());
  auto meta = reader.value()->Section(pv::SnapshotSections::kMeta);
  auto nodes = reader.value()->Section(pv::SnapshotSections::kNodes);
  ASSERT_TRUE(meta.ok());
  ASSERT_TRUE(nodes.ok());
  ASSERT_FALSE(nodes.value().empty());
  // FromImage owns a copy whose layout equals image_; the distance between
  // section starts equals the distance from the image start.
  const size_t meta_offset = 32 + 6 * 32;  // superblock + 6 table entries
  const size_t nodes_offset =
      meta_offset +
      static_cast<size_t>(nodes.value().data() - meta.value().data());
  auto snap = OpenMutated(nodes_offset + 4);
  EXPECT_EQ(snap.status().code(), StatusCode::kCorruption)
      << snap.status().ToString();
  EXPECT_NE(snap.status().message().find("checksum"), std::string::npos);
}

TEST_F(SnapshotCorruptionTest, DamagedRecordFramingFailsQueriesNotProcess) {
  // Break one record's framing (dim byte → 255) under a lazy open: the
  // snapshot opens, FindObject on the damaged id degrades to nullptr, and a
  // served query over it returns a Corruption status — the process must
  // never abort on a flipped payload bit.
  auto reader = storage::SnapshotReader::FromImage(image_);
  ASSERT_TRUE(reader.ok());
  auto meta = reader.value()->Section(pv::SnapshotSections::kMeta).value();
  auto dir = reader.value()->Section(pv::SnapshotSections::kObjectDir).value();
  auto records =
      reader.value()->Section(pv::SnapshotSections::kObjectRecords).value();
  const size_t records_offset = (32 + 6 * 32) +
      static_cast<size_t>(records.data() - meta.data());
  uint64_t victim_id;
  std::memcpy(&victim_id, dir.data(), sizeof(victim_id));
  uint64_t victim_off;
  std::memcpy(&victim_off, dir.data() + 8, sizeof(victim_off));
  // Record layout (dim = 2): UBR 32 bytes, object id u64, then dim u32.
  const size_t dim_field = records_offset + victim_off + 32 + 8;

  // A query at the victim's uncertainty-region center always keeps it as a
  // Step-1 candidate (MinDist = 0); fetch the region from the intact image.
  auto intact = pv::IndexSnapshot::FromImage(image_);
  ASSERT_TRUE(intact.ok());
  const geom::Point probe =
      intact.value()->GetObject(victim_id).value().region().Center();

  std::vector<uint8_t> bytes = image_;
  bytes[dim_field] = 0xFF;
  auto snap = pv::IndexSnapshot::FromImage(bytes);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_EQ(snap.value()->FindObject(victim_id), nullptr);
  EXPECT_EQ(snap.value()->GetObject(victim_id).status().code(),
            StatusCode::kCorruption);

  // Library level: the evaluator surfaces the corruption per call.
  pv::PnnStep2Evaluator step2(snap.value().get());
  pv::QueryScratch scratch;
  Status step2_status;
  const std::vector<uncertain::ObjectId> candidates{victim_id};
  const auto results =
      step2.Evaluate(probe, candidates, &scratch, nullptr, 0.0, &step2_status);
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(step2_status.code(), StatusCode::kCorruption);

  // Serving level: a query whose candidates include the damaged record
  // fails that answer only; the engine (and process) live on.
  auto engine = service::QueryEngine::CreateFromSnapshot(snap.value(), {});
  ASSERT_TRUE(engine.ok());
  const auto answer =
      engine.value()->Submit(service::QueryRequest::Pnn(probe)).get();
  EXPECT_EQ(answer.status.code(), StatusCode::kCorruption)
      << answer.status.ToString();
  // And a batch containing the poisoned probe plus clean queries fails only
  // the poisoned answers.
  const std::vector<geom::Point> batch{probe, probe};
  const auto answers = engine.value()->ExecuteBatch(service::PnnRequests(batch));
  for (const auto& a : answers) {
    EXPECT_EQ(a.status.code(), StatusCode::kCorruption);
  }
}

TEST_F(SnapshotCorruptionTest, PayloadChecksumMismatchCaughtWithVerify) {
  // Flip the last byte — inside the records section (it is the final one).
  const size_t off = image_.size() - 1;
  auto lazy = OpenMutated(off);
  ASSERT_TRUE(lazy.ok())
      << "default open must not read the records payload: "
      << lazy.status().ToString();
  EXPECT_EQ(lazy.value()->VerifyPayload().code(), StatusCode::kCorruption);
  auto verified = OpenMutated(off, {.verify_payload = true});
  EXPECT_EQ(verified.status().code(), StatusCode::kCorruption);
  EXPECT_NE(verified.status().message().find("checksum"), std::string::npos);
}

// ---------------------------------------------------------------------------
// AdoptSnapshot preconditions (the hot-swap stress lives in service_test)
// ---------------------------------------------------------------------------

TEST(AdoptSnapshotTest, RequiresSnapshotServingAndMatchingDim) {
  uncertain::Dataset db = RandomDatabase(8, 2, 80);
  auto builder = pv::PvIndexBuilder::Build(db);
  ASSERT_TRUE(builder.ok());
  auto snap2d = builder.value()->Seal();
  ASSERT_TRUE(snap2d.ok());

  // Borrowed-index engine: adoption is rejected.
  service::EngineBackends borrowed;
  borrowed.pv = &builder.value()->index();
  auto legacy = service::QueryEngine::Create(&db, borrowed, {});
  ASSERT_TRUE(legacy.ok());
  EXPECT_EQ(legacy.value()->AdoptSnapshot(snap2d.value()).code(),
            StatusCode::kNotSupported);
  EXPECT_EQ(legacy.value()->snapshot(), nullptr);

  // Snapshot engine: null and dimension-mismatched snapshots are rejected.
  auto engine = service::QueryEngine::CreateFromSnapshot(snap2d.value(), {});
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ(engine.value()->snapshot(), snap2d.value());
  EXPECT_EQ(engine.value()->AdoptSnapshot(nullptr).code(),
            StatusCode::kInvalidArgument);

  uncertain::Dataset db3 = RandomDatabase(9, 3, 80);
  auto builder3 = pv::PvIndexBuilder::Build(db3);
  ASSERT_TRUE(builder3.ok());
  auto snap3d = builder3.value()->Seal();
  ASSERT_TRUE(snap3d.ok());
  EXPECT_EQ(engine.value()->AdoptSnapshot(snap3d.value()).code(),
            StatusCode::kInvalidArgument);

  // A matching snapshot is adopted and served.
  EXPECT_TRUE(engine.value()->AdoptSnapshot(snap2d.value()).ok());
}

}  // namespace
}  // namespace pvdb
