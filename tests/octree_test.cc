// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Tests for the octree primary index (Section VI-A): point queries, leaf
// splitting vs page chaining under the memory budget, UBR-overlap
// redistribution through the resolver, diff-based insert/remove used by the
// incremental update, and leaf-region disjointness.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/common/random.h"
#include "src/pv/octree.h"

namespace pvdb::pv {
namespace {

struct OctreeFixture {
  explicit OctreeFixture(int dim, size_t memory_budget = 5u << 20) {
    domain = geom::Rect::Cube(dim, 0, 1000);
    pager = std::make_unique<storage::InMemoryPager>();
    OctreeOptions options;
    options.memory_budget_bytes = memory_budget;
    tree = std::make_unique<OctreePrimary>(
        domain, pager.get(),
        [this](uncertain::ObjectId id) -> Result<geom::Rect> {
          auto it = ubrs.find(id);
          if (it == ubrs.end()) return Status::NotFound("ubr");
          return it->second;
        },
        options);
  }

  void Insert(uncertain::ObjectId id, const geom::Rect& uregion,
              const geom::Rect& ubr) {
    ubrs.insert_or_assign(id, ubr);
    ASSERT_TRUE(tree->Insert(id, uregion, ubr).ok());
  }

  geom::Rect domain{2};
  std::unique_ptr<storage::InMemoryPager> pager;
  std::map<uncertain::ObjectId, geom::Rect> ubrs;
  std::unique_ptr<OctreePrimary> tree;
};

geom::Rect BoxAt(double x, double y, double half) {
  return geom::Rect(geom::Point{x - half, y - half},
                    geom::Point{x + half, y + half});
}

TEST(OctreeTest, EmptyLeafQueryReturnsNothing) {
  OctreeFixture fx(2);
  auto out = fx.tree->QueryPoint(geom::Point{500, 500});
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out.value().empty());
}

TEST(OctreeTest, QueryOutsideDomainRejected) {
  OctreeFixture fx(2);
  EXPECT_FALSE(fx.tree->QueryPoint(geom::Point{-1, 500}).ok());
}

TEST(OctreeTest, InsertedEntryFoundAtCoveredPoints) {
  OctreeFixture fx(2);
  const geom::Rect ureg = BoxAt(300, 300, 5);
  const geom::Rect ubr = BoxAt(300, 300, 50);
  fx.Insert(1, ureg, ubr);
  auto inside = fx.tree->QueryPoint(geom::Point{310, 310});
  ASSERT_TRUE(inside.ok());
  ASSERT_EQ(inside.value().size(), 1u);
  EXPECT_EQ(inside.value()[0].id, 1u);
  EXPECT_EQ(inside.value()[0].region, ureg)
      << "leaf entries carry the uncertainty region";
}

TEST(OctreeTest, SplitsWhenHeadPageFullAndMemoryAllows) {
  OctreeFixture fx(2);
  const size_t cap = fx.tree->PageCapacity();
  Rng rng(5);
  // Fill past one page with tiny UBRs in one quadrant → forces splits.
  for (uint64_t i = 0; i < cap + 20; ++i) {
    const double x = rng.NextUniform(10, 480);
    const double y = rng.NextUniform(10, 480);
    fx.Insert(i, BoxAt(x, y, 1), BoxAt(x, y, 4));
  }
  EXPECT_GT(fx.tree->node_count(), 1u) << "the root leaf must have split";
  EXPECT_GT(fx.tree->depth(), 0);
  // All entries still reachable from their UBR interiors.
  for (uint64_t i = 0; i < cap + 20; ++i) {
    const geom::Rect& ubr = fx.ubrs.at(i);
    auto out = fx.tree->QueryPoint(ubr.Center());
    ASSERT_TRUE(out.ok());
    bool found = false;
    for (const auto& e : out.value()) found |= e.id == i;
    EXPECT_TRUE(found) << "entry " << i << " lost after splits";
  }
}

TEST(OctreeTest, ChainsPagesWhenMemoryBudgetExhausted) {
  // Budget below one split's cost: the tree must stay a single leaf and
  // chain pages instead (Section VI-A step 3).
  OctreeFixture fx(2, /*memory_budget=*/1);
  const size_t cap = fx.tree->PageCapacity();
  Rng rng(6);
  for (uint64_t i = 0; i < 3 * cap; ++i) {
    const double x = rng.NextUniform(10, 990);
    const double y = rng.NextUniform(10, 990);
    fx.Insert(i, BoxAt(x, y, 1), BoxAt(x, y, 4));
  }
  EXPECT_EQ(fx.tree->node_count(), 1u);
  EXPECT_EQ(fx.tree->leaf_count(), 1u);
  auto out = fx.tree->QueryPoint(geom::Point{500, 500});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().size(), 3 * cap) << "single leaf holds everything";
}

TEST(OctreeTest, EntrySpansMultipleLeavesAfterSplit) {
  OctreeFixture fx(2);
  const size_t cap = fx.tree->PageCapacity();
  Rng rng(7);
  // One mid-sized-UBR object plus enough small ones to split every quadrant
  // down to depth >= 2 (leaf side <= 250).
  fx.Insert(1000, BoxAt(500, 500, 5), BoxAt(500, 500, 200));
  for (uint64_t i = 0; i < 8 * cap; ++i) {
    const double x = rng.NextUniform(10, 990);
    const double y = rng.NextUniform(10, 990);
    fx.Insert(i, BoxAt(x, y, 1), BoxAt(x, y, 3));
  }
  ASSERT_GE(fx.tree->depth(), 2);
  // The big object must be present at probe points inside its UBR
  // ([300,700]^2)...
  for (const auto& probe :
       {geom::Point{350, 350}, geom::Point{650, 350}, geom::Point{350, 650},
        geom::Point{650, 650}, geom::Point{500, 500}}) {
    auto out = fx.tree->QueryPoint(probe);
    ASSERT_TRUE(out.ok());
    bool found = false;
    for (const auto& e : out.value()) found |= e.id == 1000u;
    EXPECT_TRUE(found) << "big UBR lost at " << probe.ToString();
  }
  // ...and absent from a leaf provably disjoint from it: (990,990) lies in
  // a depth-2 (or deeper) leaf within [750,1000]^2, disjoint from the UBR.
  auto out = fx.tree->QueryPoint(geom::Point{990, 990});
  ASSERT_TRUE(out.ok());
  for (const auto& e : out.value()) EXPECT_NE(e.id, 1000u);
}

TEST(OctreeTest, RemoveErasesFromAllLeaves) {
  OctreeFixture fx(2);
  const size_t cap = fx.tree->PageCapacity();
  Rng rng(8);
  fx.Insert(1000, BoxAt(500, 500, 5), BoxAt(500, 500, 400));
  for (uint64_t i = 0; i < cap + 10; ++i) {
    const double x = rng.NextUniform(10, 990);
    const double y = rng.NextUniform(10, 990);
    fx.Insert(i, BoxAt(x, y, 1), BoxAt(x, y, 3));
  }
  ASSERT_TRUE(fx.tree->Remove(1000, fx.ubrs.at(1000)).ok());
  for (const auto& probe :
       {geom::Point{150, 150}, geom::Point{850, 850}, geom::Point{500, 500}}) {
    auto out = fx.tree->QueryPoint(probe);
    ASSERT_TRUE(out.ok());
    for (const auto& e : out.value()) EXPECT_NE(e.id, 1000u);
  }
}

TEST(OctreeTest, InsertDiffOnlyTouchesNewLeaves) {
  OctreeFixture fx(2);
  const size_t cap = fx.tree->PageCapacity();
  Rng rng(9);
  // Split every quadrant down to depth >= 2 so probe leaves are <= 250 wide.
  for (uint64_t i = 0; i < 8 * cap; ++i) {
    const double x = rng.NextUniform(10, 990);
    const double y = rng.NextUniform(10, 990);
    fx.Insert(i, BoxAt(x, y, 1), BoxAt(x, y, 3));
  }
  ASSERT_GE(fx.tree->depth(), 2);

  // Simulate an update: object 500 grows from old UBR (left box) to new
  // UBR ([160,640]x[240,720]). InsertDiff must add entries only where the
  // old UBR did not reach.
  const geom::Rect old_ubr = BoxAt(250, 500, 100);
  const geom::Rect new_ubr(geom::Point{160, 240}, geom::Point{640, 720});
  fx.ubrs.insert_or_assign(500, old_ubr);
  ASSERT_TRUE(fx.tree->Insert(500, BoxAt(250, 500, 2), old_ubr).ok());
  fx.ubrs.insert_or_assign(500, new_ubr);
  ASSERT_TRUE(
      fx.tree->InsertDiff(500, BoxAt(250, 500, 2), new_ubr, old_ubr).ok());

  // Probe points: inside old (was covered), inside new-only (needs the diff
  // insert), and in a depth-2 leaf ([750,1000]^2) disjoint from both.
  auto contains500 = [&](const geom::Point& p) {
    auto out = fx.tree->QueryPoint(p);
    EXPECT_TRUE(out.ok());
    for (const auto& e : out.value()) {
      if (e.id == 500u) return true;
    }
    return false;
  };
  EXPECT_TRUE(contains500(geom::Point{250, 500}));   // old region
  EXPECT_TRUE(contains500(geom::Point{600, 300}));   // new-only region
  EXPECT_FALSE(contains500(geom::Point{990, 990}));  // outside both
}

TEST(OctreeTest, RemoveDiffKeepsEntriesInExcludedLeaves) {
  OctreeFixture fx(2);
  const size_t cap = fx.tree->PageCapacity();
  Rng rng(10);
  for (uint64_t i = 0; i < cap + 10; ++i) {
    const double x = rng.NextUniform(10, 990);
    const double y = rng.NextUniform(10, 990);
    fx.Insert(i, BoxAt(x, y, 1), BoxAt(x, y, 3));
  }
  ASSERT_GT(fx.tree->leaf_count(), 1u);

  // Object 600 shrinks from a wide UBR to a smaller one: entries must
  // disappear from leaves outside the new UBR but stay inside it.
  const geom::Rect old_ubr = BoxAt(500, 500, 400);
  const geom::Rect new_ubr = BoxAt(300, 300, 120);
  fx.Insert(600, BoxAt(300, 300, 2), old_ubr);
  ASSERT_TRUE(fx.tree->RemoveDiff(600, old_ubr, new_ubr).ok());

  auto contains600 = [&](const geom::Point& p) {
    auto out = fx.tree->QueryPoint(p);
    EXPECT_TRUE(out.ok());
    for (const auto& e : out.value()) {
      if (e.id == 600u) return true;
    }
    return false;
  };
  EXPECT_TRUE(contains600(geom::Point{300, 300}));
  EXPECT_FALSE(contains600(geom::Point{850, 850}));
}

TEST(OctreeTest, CollectOverlappingIsSupersetOfPointQueries) {
  OctreeFixture fx(3);
  Rng rng(11);
  for (uint64_t i = 0; i < 300; ++i) {
    geom::Point c(3);
    for (int k = 0; k < 3; ++k) c[k] = rng.NextUniform(20, 980);
    const geom::Rect ureg = geom::Rect::FromCenterHalfWidths(
        c, geom::Point{2, 2, 2});
    const geom::Rect ubr = geom::Rect::FromCenterHalfWidths(
        c, geom::Point{15, 15, 15});
    fx.ubrs.insert_or_assign(i, ubr);
    ASSERT_TRUE(fx.tree->Insert(i, ureg, ubr).ok());
  }
  const geom::Rect range = geom::Rect::Cube(3, 200, 600);
  auto collected = fx.tree->CollectOverlapping(range);
  ASSERT_TRUE(collected.ok());
  std::set<uint64_t> ids;
  for (const auto& e : collected.value()) ids.insert(e.id);
  // Any object whose UBR overlaps the range must be collected.
  for (const auto& [id, ubr] : fx.ubrs) {
    if (ubr.Intersects(range)) {
      EXPECT_EQ(ids.count(id), 1u) << "object " << id << " missed";
    }
  }
}

TEST(OctreeTest, PageCapacityMatchesEntryLayout) {
  OctreeFixture fx2(2), fx5(5);
  // Entry = 8 (id) + 2·d·8 (region); page payload = 4096 − 16.
  EXPECT_EQ(fx2.tree->PageCapacity(), (4096u - 16) / (8 + 32));
  EXPECT_EQ(fx5.tree->PageCapacity(), (4096u - 16) / (8 + 80));
}

TEST(OctreeTest, QueryIoCountsPagesOfOneLeafOnly) {
  OctreeFixture fx(2);
  const size_t cap = fx.tree->PageCapacity();
  Rng rng(12);
  for (uint64_t i = 0; i < 4 * cap; ++i) {
    const double x = rng.NextUniform(10, 990);
    const double y = rng.NextUniform(10, 990);
    fx.Insert(i, BoxAt(x, y, 1), BoxAt(x, y, 3));
  }
  const int64_t before =
      fx.pager->metrics().Get(storage::PagerCounters::kReads);
  auto out = fx.tree->QueryPoint(geom::Point{500, 500});
  ASSERT_TRUE(out.ok());
  const int64_t reads =
      fx.pager->metrics().Get(storage::PagerCounters::kReads) - before;
  // One leaf's chain only: far fewer pages than the whole index.
  EXPECT_GE(reads, 1);
  EXPECT_LE(reads, static_cast<int64_t>(
                       (out.value().size() + cap - 1) / cap + 1));
}

}  // namespace
}  // namespace pvdb::pv
