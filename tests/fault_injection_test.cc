// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Fault-injection tests: a wrapper pager that starts failing after a
// configurable number of operations. Every storage-touching layer (record
// store, extensible hash, octree, secondary index, PV-index build/query/
// update) must surface the failure as a non-OK Status — never crash,
// never silently succeed.

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/pv/pv_index.h"
#include "src/storage/extendible_hash.h"
#include "src/storage/pager.h"
#include "src/storage/record_store.h"
#include "src/uncertain/datagen.h"

namespace pvdb {
namespace {

using storage::Page;
using storage::PageId;
using storage::Pager;

/// Delegating pager that fails every operation once `budget` ops have run.
class FlakyPager : public Pager {
 public:
  explicit FlakyPager(int64_t budget) : budget_(budget) {}

  Result<PageId> Allocate() override {
    if (!Spend()) return Status::IOError("injected allocate failure");
    return inner_.Allocate();
  }
  Status Read(PageId id, Page* out) override {
    if (!Spend()) return Status::IOError("injected read failure");
    return inner_.Read(id, out);
  }
  Status Write(PageId id, const Page& page) override {
    if (!Spend()) return Status::IOError("injected write failure");
    return inner_.Write(id, page);
  }
  Status Free(PageId id) override {
    if (!Spend()) return Status::IOError("injected free failure");
    return inner_.Free(id);
  }
  size_t LivePageCount() const override { return inner_.LivePageCount(); }

  /// Ops performed so far (to size budgets in tests).
  int64_t used() const { return used_; }
  void set_budget(int64_t budget) { budget_ = budget; }

 private:
  bool Spend() {
    ++used_;
    return used_ <= budget_;
  }

  storage::InMemoryPager inner_;
  int64_t budget_;
  int64_t used_ = 0;
};

TEST(FaultInjectionTest, RecordStoreSurfacesIoErrors) {
  FlakyPager pager(2);  // enough for one small Put, not for more
  storage::RecordStore store(&pager);
  auto first = store.Put(std::vector<uint8_t>(100, 7));
  ASSERT_TRUE(first.ok());
  auto second = store.Put(std::vector<uint8_t>(100, 8));
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kIOError);
}

TEST(FaultInjectionTest, ExtendibleHashSurfacesIoErrors) {
  FlakyPager pager(1 << 30);
  auto table = storage::ExtendibleHash::Create(&pager);
  ASSERT_TRUE(table.ok());
  for (uint64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(table.value().Put(k, storage::RecordRef{k, 1}).ok());
  }
  pager.set_budget(pager.used());  // every further op fails
  EXPECT_EQ(table.value().Get(5).status().code(), StatusCode::kIOError);
  EXPECT_EQ(table.value().Put(1000, storage::RecordRef{1, 1}).code(),
            StatusCode::kIOError);
  EXPECT_EQ(table.value().Delete(5).code(), StatusCode::kIOError);
}

TEST(FaultInjectionTest, PvIndexBuildFailsCleanly) {
  uncertain::SyntheticOptions synth;
  synth.dim = 2;
  synth.count = 60;
  synth.samples_per_object = 20;
  synth.seed = 1;
  const auto db = uncertain::GenerateSynthetic(synth);
  // Reference run: count the page operations a successful build needs.
  FlakyPager probe(1LL << 60);
  ASSERT_TRUE(pv::PvIndex::Build(db, &probe, pv::PvIndexOptions{}).ok());
  const int64_t full = probe.used();
  ASSERT_GT(full, 10);

  // Sweep budgets below that so the failure lands in different build phases
  // (hash creation, record puts, octree page writes, splits).
  for (int64_t budget : {int64_t{0}, int64_t{1}, int64_t{5}, full / 10,
                         full / 2, full - 1}) {
    FlakyPager pager(budget);
    auto built = pv::PvIndex::Build(db, &pager, pv::PvIndexOptions{});
    EXPECT_FALSE(built.ok()) << "budget " << budget << " of " << full;
    EXPECT_EQ(built.status().code(), StatusCode::kIOError);
  }
}

TEST(FaultInjectionTest, QueriesAndUpdatesSurfaceLateFailures) {
  uncertain::SyntheticOptions synth;
  synth.dim = 2;
  synth.count = 80;
  synth.samples_per_object = 10;
  synth.seed = 2;
  auto db = uncertain::GenerateSynthetic(synth);
  FlakyPager pager(1 << 30);
  auto built = pv::PvIndex::Build(db, &pager, pv::PvIndexOptions{});
  ASSERT_TRUE(built.ok());

  // Disk dies after the build: queries and updates must report it.
  pager.set_budget(pager.used());
  auto query = built.value()->QueryPossibleNN(geom::Point{5000, 5000});
  EXPECT_FALSE(query.ok());
  EXPECT_EQ(query.status().code(), StatusCode::kIOError);

  const auto& victim = db.objects()[0];
  const uncertain::UncertainObject removed = victim;
  ASSERT_TRUE(db.Remove(victim.id()).ok());
  EXPECT_EQ(built.value()->DeleteObject(db, removed).code(),
            StatusCode::kIOError);
}

TEST(FaultInjectionTest, RecoveryAfterTransientFault) {
  // After a failed query the index is read-only intact: restoring the disk
  // budget must make the same query succeed (reads have no side effects).
  uncertain::SyntheticOptions synth;
  synth.dim = 2;
  synth.count = 50;
  synth.samples_per_object = 10;
  synth.seed = 3;
  const auto db = uncertain::GenerateSynthetic(synth);
  FlakyPager pager(1 << 30);
  auto built = pv::PvIndex::Build(db, &pager, pv::PvIndexOptions{});
  ASSERT_TRUE(built.ok());

  pager.set_budget(pager.used());
  EXPECT_FALSE(built.value()->QueryPossibleNN(geom::Point{100, 100}).ok());
  pager.set_budget(1 << 30);
  auto retry = built.value()->QueryPossibleNN(geom::Point{100, 100});
  ASSERT_TRUE(retry.ok());
  EXPECT_FALSE(retry.value().empty());
}

}  // namespace
}  // namespace pvdb
