// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// R*-tree tests: structural invariants under insert/erase churn, range and
// point queries vs a linear-scan oracle, incremental NN browsing order, kNN
// correctness, and the branch-and-prune PNNQ Step-1 baseline vs brute force.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/common/random.h"
#include "src/rtree/rstar_tree.h"
#include "src/rtree/rtree_pnn.h"

namespace pvdb::rtree {
namespace {

geom::Rect RandomRect(Rng* rng, int dim, double max_side = 10.0) {
  geom::Point lo(dim), hi(dim);
  for (int i = 0; i < dim; ++i) {
    const double c = rng->NextUniform(max_side, 1000 - max_side);
    const double s = rng->NextUniform(0.1, max_side);
    lo[i] = c - s;
    hi[i] = c + s;
  }
  return geom::Rect(lo, hi);
}

geom::Point RandomPoint(Rng* rng, int dim, double lo = 0, double hi = 1000) {
  geom::Point p(dim);
  for (int i = 0; i < dim; ++i) p[i] = rng->NextUniform(lo, hi);
  return p;
}

std::vector<uint64_t> Sorted(std::vector<uint64_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

// ---------------------------------------------------------------------------
// Basic operations
// ---------------------------------------------------------------------------

TEST(RStarTreeTest, EmptyTreeBehaves) {
  RStarTree tree(2);
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1);
  EXPECT_TRUE(tree.Search(geom::Rect::Cube(2, 0, 1000)).empty());
  EXPECT_TRUE(tree.KNearest(geom::Point{1, 1}, 5).empty());
  EXPECT_FALSE(tree.Erase(geom::Rect::Cube(2, 0, 1), 0));
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(RStarTreeTest, SmallFanoutForcesSplits) {
  RStarOptions options;
  options.max_entries = 8;
  options.min_entries = 3;
  options.reinsert_count = 2;
  RStarTree tree(2, options);
  Rng rng(1);
  for (uint64_t i = 0; i < 500; ++i) tree.Insert(RandomRect(&rng, 2), i);
  EXPECT_EQ(tree.size(), 500u);
  EXPECT_GT(tree.height(), 2);
  EXPECT_TRUE(tree.CheckInvariants());
}

class RStarTreeDimTest : public ::testing::TestWithParam<int> {};

TEST_P(RStarTreeDimTest, RangeQueryMatchesLinearScan) {
  const int dim = GetParam();
  RStarOptions options;
  options.max_entries = 16;
  options.min_entries = 6;
  options.reinsert_count = 4;
  RStarTree tree(dim, options);
  Rng rng(10 + dim);
  std::vector<geom::Rect> keys;
  for (uint64_t i = 0; i < 800; ++i) {
    keys.push_back(RandomRect(&rng, dim));
    tree.Insert(keys.back(), i);
  }
  ASSERT_TRUE(tree.CheckInvariants());
  for (int q = 0; q < 50; ++q) {
    const geom::Rect range = RandomRect(&rng, dim, 80.0);
    std::vector<uint64_t> expected;
    for (uint64_t i = 0; i < keys.size(); ++i) {
      if (keys[i].Intersects(range)) expected.push_back(i);
    }
    EXPECT_EQ(Sorted(tree.Search(range)), expected);
  }
}

TEST_P(RStarTreeDimTest, KnnMatchesLinearScan) {
  const int dim = GetParam();
  RStarTree tree(dim);
  Rng rng(20 + dim);
  std::vector<geom::Rect> keys;
  for (uint64_t i = 0; i < 600; ++i) {
    keys.push_back(RandomRect(&rng, dim));
    tree.Insert(keys.back(), i);
  }
  for (int q = 0; q < 30; ++q) {
    const geom::Point query = RandomPoint(&rng, dim);
    // Oracle: sort by MinDist.
    std::vector<std::pair<double, uint64_t>> oracle;
    for (uint64_t i = 0; i < keys.size(); ++i) {
      oracle.emplace_back(geom::MinDist(keys[i], query), i);
    }
    std::sort(oracle.begin(), oracle.end());
    const auto knn = tree.KNearest(query, 10);
    ASSERT_EQ(knn.size(), 10u);
    for (size_t i = 0; i < knn.size(); ++i) {
      // Distances must match the oracle (ids may differ under ties).
      EXPECT_NEAR(knn[i].dist, oracle[i].first, 1e-9);
    }
  }
}

TEST_P(RStarTreeDimTest, BrowseNearestIsNonDecreasing) {
  const int dim = GetParam();
  RStarTree tree(dim);
  Rng rng(30 + dim);
  for (uint64_t i = 0; i < 400; ++i) tree.Insert(RandomRect(&rng, dim), i);
  const geom::Point query = RandomPoint(&rng, dim);
  auto it = tree.BrowseNearest(query);
  double prev = -1;
  size_t count = 0;
  while (it.HasNext()) {
    const auto item = it.Next();
    EXPECT_GE(item.dist, prev - 1e-12);
    prev = item.dist;
    ++count;
  }
  EXPECT_EQ(count, 400u) << "browse must enumerate every entry exactly once";
}

INSTANTIATE_TEST_SUITE_P(Dims, RStarTreeDimTest, ::testing::Values(2, 3, 5));

// ---------------------------------------------------------------------------
// Deletion
// ---------------------------------------------------------------------------

TEST(RStarTreeTest, EraseRemovesExactlyOneMatch) {
  RStarTree tree(2);
  Rng rng(40);
  const geom::Rect key = RandomRect(&rng, 2);
  tree.Insert(key, 1);
  tree.Insert(key, 1);  // duplicate
  EXPECT_EQ(tree.size(), 2u);
  EXPECT_TRUE(tree.Erase(key, 1));
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_TRUE(tree.Erase(key, 1));
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_FALSE(tree.Erase(key, 1));
}

TEST(RStarTreeTest, ChurnKeepsInvariantsAndAnswers) {
  RStarOptions options;
  options.max_entries = 10;
  options.min_entries = 4;
  options.reinsert_count = 3;
  RStarTree tree(3, options);
  Rng rng(50);
  std::vector<std::pair<geom::Rect, uint64_t>> live;
  uint64_t next_id = 0;
  for (int round = 0; round < 2000; ++round) {
    if (live.empty() || rng.NextBool(0.6)) {
      geom::Rect key = RandomRect(&rng, 3);
      tree.Insert(key, next_id);
      live.emplace_back(key, next_id);
      ++next_id;
    } else {
      const size_t pick = static_cast<size_t>(
          rng.NextBounded(live.size()));
      ASSERT_TRUE(tree.Erase(live[pick].first, live[pick].second));
      live[pick] = live.back();
      live.pop_back();
    }
    if (round % 250 == 0) ASSERT_TRUE(tree.CheckInvariants());
  }
  ASSERT_TRUE(tree.CheckInvariants());
  EXPECT_EQ(tree.size(), live.size());
  // Final answer check.
  const geom::Rect range = geom::Rect::Cube(3, 200, 600);
  std::vector<uint64_t> expected;
  for (const auto& [key, id] : live) {
    if (key.Intersects(range)) expected.push_back(id);
  }
  EXPECT_EQ(Sorted(tree.Search(range)), Sorted(expected));
}

// ---------------------------------------------------------------------------
// PNNQ Step-1 baseline
// ---------------------------------------------------------------------------

TEST(RTreePnnTest, MatchesBruteForceMinMaxFilter) {
  for (int dim : {2, 3, 4}) {
    RStarTree tree(dim);
    Rng rng(60 + dim);
    std::vector<geom::Rect> regions;
    for (uint64_t i = 0; i < 500; ++i) {
      regions.push_back(RandomRect(&rng, dim));
      tree.Insert(regions.back(), i);
    }
    for (int q = 0; q < 50; ++q) {
      const geom::Point query = RandomPoint(&rng, dim);
      // Oracle.
      double tau_sq = std::numeric_limits<double>::infinity();
      for (const auto& r : regions) {
        tau_sq = std::min(tau_sq, geom::MaxDistSq(r, query));
      }
      std::vector<uint64_t> expected;
      for (uint64_t i = 0; i < regions.size(); ++i) {
        if (geom::MinDistSq(regions[i], query) <= tau_sq) expected.push_back(i);
      }
      EXPECT_EQ(PnnStep1BranchAndPrune(tree, query), expected);
    }
  }
}

TEST(RTreePnnTest, SingleObjectAlwaysCandidate) {
  RStarTree tree(2);
  tree.Insert(geom::Rect::Cube(2, 400, 410), 7);
  const auto out = PnnStep1BranchAndPrune(tree, geom::Point{0, 0});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 7u);
}

TEST(RTreePnnTest, ChargesLeafIo) {
  RStarTree tree(3);
  Rng rng(70);
  for (uint64_t i = 0; i < 2000; ++i) tree.Insert(RandomRect(&rng, 3), i);
  const int64_t before =
      tree.metrics().Get(RTreeCounters::kLeafPagesRead);
  PnnStep1BranchAndPrune(tree, RandomPoint(&rng, 3));
  EXPECT_GT(tree.metrics().Get(RTreeCounters::kLeafPagesRead), before);
}

// ---------------------------------------------------------------------------
// Degenerate keys (points) — the mean-position tree of chooseCSet
// ---------------------------------------------------------------------------

TEST(RStarTreeTest, DegeneratePointKeysWork) {
  RStarTree tree(2);
  Rng rng(80);
  std::vector<geom::Point> points;
  for (uint64_t i = 0; i < 300; ++i) {
    points.push_back(RandomPoint(&rng, 2));
    tree.Insert(geom::Rect::FromPoint(points.back()), i);
  }
  ASSERT_TRUE(tree.CheckInvariants());
  const geom::Point q = RandomPoint(&rng, 2);
  std::vector<std::pair<double, uint64_t>> oracle;
  for (uint64_t i = 0; i < points.size(); ++i) {
    oracle.emplace_back(points[i].DistanceTo(q), i);
  }
  std::sort(oracle.begin(), oracle.end());
  auto it = tree.BrowseNearest(q);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(it.HasNext());
    EXPECT_NEAR(it.Next().dist, oracle[static_cast<size_t>(i)].first, 1e-9);
  }
}

}  // namespace
}  // namespace pvdb::rtree
