// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Serving-path tests: thread pool, LRU leaf cache, backend planner, and the
// QueryEngine — batched parallel answers bit-identical to the sequential
// QueryPossibleNN + Step-2 pipeline on all three backends, cache hit and
// invalidation correctness across insert/delete, and a multi-thread stress
// test asserting no lost or duplicated answers.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "src/common/random.h"
#include "src/pv/index_snapshot.h"
#include "src/pv/pnnq.h"
#include "src/pv/pv_index.h"
#include "src/pv/pv_index_builder.h"
#include "src/rtree/rtree_pnn.h"
#include "src/service/planner.h"
#include "src/service/query_engine.h"
#include "src/service/result_cache.h"
#include "src/service/thread_pool.h"
#include "src/storage/pager.h"
#include "src/uncertain/datagen.h"
#include "src/uv/uv_index.h"

namespace pvdb::service {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(1000);
  pool.ParallelFor(counts.size(),
                   [&](size_t i) { counts[i].fetch_add(1); });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPoolTest, ParallelForHandlesFewerItemsThanWorkers) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> counts(3);
  pool.ParallelFor(counts.size(),
                   [&](size_t i) { counts[i].fetch_add(1); });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
  pool.ParallelFor(0, [&](size_t) { FAIL() << "no items, no calls"; });
}

TEST(ThreadPoolTest, SubmitRunsTask) {
  ThreadPool pool(2);
  std::promise<int> done;
  pool.Submit([&done] { done.set_value(7); });
  EXPECT_EQ(done.get_future().get(), 7);
}

// ---------------------------------------------------------------------------
// ResultCache
// ---------------------------------------------------------------------------

pv::LeafBlock MakeBlock(std::initializer_list<uint64_t> ids) {
  pv::LeafBlock block;
  block.Reset(2);
  for (uint64_t id : ids) block.PushBack(id, geom::Rect::Cube(2, 0, 1));
  return block;
}

TEST(ResultCacheTest, HitMissAndCounters) {
  ResultCache cache(8);
  EXPECT_EQ(cache.Lookup(BackendKind::kPvIndex, 1), nullptr);
  cache.Insert(BackendKind::kPvIndex, 1, MakeBlock({10, 11}));
  auto hit = cache.Lookup(BackendKind::kPvIndex, 1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->size(), 2u);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
  // Same leaf id under a different backend is a distinct key.
  EXPECT_EQ(cache.Lookup(BackendKind::kUvIndex, 1), nullptr);
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsed) {
  ResultCache cache(2);
  cache.Insert(BackendKind::kPvIndex, 1, MakeBlock({1}));
  cache.Insert(BackendKind::kPvIndex, 2, MakeBlock({2}));
  // Touch leaf 1 so leaf 2 is the LRU victim.
  ASSERT_NE(cache.Lookup(BackendKind::kPvIndex, 1), nullptr);
  cache.Insert(BackendKind::kPvIndex, 3, MakeBlock({3}));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.Lookup(BackendKind::kPvIndex, 1), nullptr);
  EXPECT_EQ(cache.Lookup(BackendKind::kPvIndex, 2), nullptr);
  EXPECT_NE(cache.Lookup(BackendKind::kPvIndex, 3), nullptr);
}

TEST(ResultCacheTest, SnapshotSurvivesEviction) {
  ResultCache cache(1);
  auto snapshot = cache.Insert(BackendKind::kPvIndex, 1, MakeBlock({42}));
  cache.Insert(BackendKind::kPvIndex, 2, MakeBlock({43}));  // evicts leaf 1
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->ids[0], 42u);
}

TEST(ResultCacheTest, InvalidateIsPerBackend) {
  ResultCache cache(8);
  cache.Insert(BackendKind::kPvIndex, 1, MakeBlock({1}));
  cache.Insert(BackendKind::kUvIndex, 1, MakeBlock({2}));
  cache.Invalidate(BackendKind::kPvIndex);
  EXPECT_EQ(cache.Lookup(BackendKind::kPvIndex, 1), nullptr);
  EXPECT_NE(cache.Lookup(BackendKind::kUvIndex, 1), nullptr);
}

// ---------------------------------------------------------------------------
// Planner
// ---------------------------------------------------------------------------

TEST(PlannerTest, PrefersPvIndexForLargeDatasets) {
  PlanInput input;
  input.dim = 3;
  input.dataset_size = 20000;
  input.available = {BackendKind::kPvIndex, BackendKind::kRtree};
  auto plan = PlanBackend(input);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().backend, BackendKind::kPvIndex);
}

TEST(PlannerTest, SmallDatasetsGoToTheRtree) {
  PlanInput input;
  input.dim = 3;
  input.dataset_size = kSmallDatasetRtreeThreshold - 1;
  input.available = {BackendKind::kPvIndex, BackendKind::kRtree};
  auto plan = PlanBackend(input);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().backend, BackendKind::kRtree);
}

TEST(PlannerTest, UvIndexServes2DWhenNoPv) {
  PlanInput input;
  input.dim = 2;
  input.dataset_size = 20000;
  input.available = {BackendKind::kUvIndex, BackendKind::kRtree};
  auto plan = PlanBackend(input);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().backend, BackendKind::kUvIndex);
}

TEST(PlannerTest, OverrideWinsAndIsValidated) {
  PlanInput input;
  input.dim = 2;
  input.dataset_size = 20000;
  input.available = {BackendKind::kPvIndex, BackendKind::kUvIndex};
  input.override = BackendKind::kUvIndex;
  auto plan = PlanBackend(input);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().backend, BackendKind::kUvIndex);

  input.override = BackendKind::kRtree;  // not built
  EXPECT_EQ(PlanBackend(input).status().code(), StatusCode::kInvalidArgument);

  input.dim = 3;
  input.override = BackendKind::kUvIndex;  // UV is 2D-only
  EXPECT_EQ(PlanBackend(input).status().code(), StatusCode::kNotSupported);
}

TEST(PlannerTest, FailsWithNoUsableBackend) {
  PlanInput input;
  input.dim = 3;
  input.dataset_size = 1000;
  input.available = {BackendKind::kUvIndex};
  EXPECT_FALSE(PlanBackend(input).ok());
}

// ---------------------------------------------------------------------------
// QueryEngine: equivalence with the sequential pipeline
// ---------------------------------------------------------------------------

/// A 2D world where all three backends are buildable, plus the sequential
/// reference pipeline the engine must reproduce bit-for-bit. Index
/// construction is the expensive part; read-only tests share one world via
/// SharedWorld(), mutation tests build their own.
struct EngineWorld {
  explicit EngineWorld(uint64_t seed = 21, size_t count = 400) {
    uncertain::SyntheticOptions synth;
    synth.dim = 2;
    synth.count = count;
    synth.samples_per_object = 40;
    synth.max_region_extent = 150;
    synth.domain_hi = 1000;
    synth.seed = seed;
    db = std::make_unique<uncertain::Dataset>(
        uncertain::GenerateSynthetic(synth));
    pv = pv::PvIndex::Build(*db, &pv_pager, {}).value();
    uv = uv::UvIndex::Build(*db, &uv_pager, {}).value();
    rtree = BuildUncertaintyRtree(*db);
  }

  EngineBackends All() {
    EngineBackends b;
    b.pv = pv.get();
    b.uv = uv.get();
    b.rtree = rtree.get();
    return b;
  }

  std::vector<geom::Point> RandomQueries(size_t n, uint64_t seed) {
    Rng rng(seed);
    std::vector<geom::Point> out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      out.push_back(
          geom::Point{rng.NextUniform(0, 1000), rng.NextUniform(0, 1000)});
    }
    return out;
  }

  /// The sequential library pipeline for one backend kind.
  std::vector<pv::PnnResult> Sequential(BackendKind kind,
                                        const geom::Point& q) const {
    std::vector<uncertain::ObjectId> step1;
    switch (kind) {
      case BackendKind::kPvIndex:
        step1 = pv->QueryPossibleNN(q).value();
        break;
      case BackendKind::kUvIndex:
        step1 = uv->QueryPossibleNN(q).value();
        break;
      case BackendKind::kRtree:
        step1 = rtree::PnnStep1BranchAndPrune(*rtree, q);
        break;
    }
    pv::PnnStep2Evaluator step2(db.get());
    return step2.Evaluate(q, step1);
  }

  std::unique_ptr<uncertain::Dataset> db;
  storage::InMemoryPager pv_pager;
  storage::InMemoryPager uv_pager;
  std::unique_ptr<pv::PvIndex> pv;
  std::unique_ptr<uv::UvIndex> uv;
  std::unique_ptr<rtree::RStarTree> rtree;
};

/// One world shared by all tests that never mutate the dataset/indexes.
EngineWorld& SharedWorld() {
  static EngineWorld* world = new EngineWorld();
  return *world;
}

void ExpectAnswersEqual(const std::vector<pv::PnnResult>& expected,
                        const QueryAnswer& actual) {
  ASSERT_TRUE(actual.status.ok()) << actual.status.ToString();
  ASSERT_EQ(actual.results.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual.results[i].id, expected[i].id);
    // Bit-identical: the engine runs the same code over the same candidate
    // order, cached or not.
    EXPECT_EQ(actual.results[i].probability, expected[i].probability);
  }
}

/// Near-compare for answers across an index round-trip (insert then delete):
/// the leaf rewrite may reorder candidates, which reorders Step-2's
/// survival-product multiplications — same values up to FP associativity.
void ExpectAnswersClose(const std::vector<pv::PnnResult>& expected,
                        const QueryAnswer& actual) {
  ASSERT_TRUE(actual.status.ok()) << actual.status.ToString();
  ASSERT_EQ(actual.results.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual.results[i].id, expected[i].id);
    EXPECT_NEAR(actual.results[i].probability, expected[i].probability, 1e-9);
  }
}

class QueryEngineBackendTest
    : public ::testing::TestWithParam<BackendKind> {};

TEST_P(QueryEngineBackendTest, BatchedParallelMatchesSequential) {
  EngineWorld& world = SharedWorld();
  QueryEngineOptions options;
  options.threads = 4;
  options.backend_override = GetParam();
  auto engine = QueryEngine::Create(world.db.get(), world.All(), options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ(engine.value()->active_backend(), GetParam());

  const auto queries = world.RandomQueries(64, 99);
  // Two rounds: the second is served from warm cache on leaf-structured
  // backends and must still be identical.
  for (int round = 0; round < 2; ++round) {
    ServiceStats stats;
    const auto answers =
        engine.value()->ExecuteBatch(PnnRequests(queries), &stats);
    ASSERT_EQ(answers.size(), queries.size());
    EXPECT_EQ(stats.queries, static_cast<int64_t>(queries.size()));
    for (size_t i = 0; i < queries.size(); ++i) {
      ExpectAnswersEqual(world.Sequential(GetParam(), queries[i]), answers[i]);
    }
  }
  if (GetParam() != BackendKind::kRtree) {
    EXPECT_GT(engine.value()->cache()->hits(), 0)
        << "second round should hit the leaf cache";
  }
}

TEST_P(QueryEngineBackendTest, ScratchPathBitIdenticalToAllocatingPath) {
  // The engine's Step 2 runs through a per-worker QueryScratch reused across
  // every query; the reference pipeline allocates fresh buffers per call.
  // One worker thread forces every answer through the SAME scratch arena, so
  // any state leaking between queries would surface as a probability
  // mismatch somewhere in the stream.
  EngineWorld& world = SharedWorld();
  QueryEngineOptions options;
  options.threads = 1;
  options.backend_override = GetParam();
  auto engine =
      QueryEngine::Create(world.db.get(), world.All(), options).value();

  const auto queries = world.RandomQueries(128, 1234);
  const auto answers = engine->ExecuteBatch(PnnRequests(queries));
  ASSERT_EQ(answers.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    SCOPED_TRACE("query " + std::to_string(i));
    ExpectAnswersEqual(world.Sequential(GetParam(), queries[i]), answers[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, QueryEngineBackendTest,
                         ::testing::Values(BackendKind::kPvIndex,
                                           BackendKind::kUvIndex,
                                           BackendKind::kRtree),
                         [](const auto& info) {
                           return std::string(BackendKindName(info.param));
                         });

TEST(QueryEngineTest, AsyncSubmitMatchesSequential) {
  EngineWorld& world = SharedWorld();
  QueryEngineOptions options;
  options.threads = 2;
  options.backend_override = BackendKind::kPvIndex;
  auto engine =
      QueryEngine::Create(world.db.get(), world.All(), options).value();

  const auto queries = world.RandomQueries(16, 5);
  std::vector<std::future<QueryAnswer>> futures;
  for (const auto& q : queries) {
    futures.push_back(engine->Submit(QueryRequest::Pnn(q)));
  }
  for (size_t i = 0; i < queries.size(); ++i) {
    ExpectAnswersEqual(world.Sequential(BackendKind::kPvIndex, queries[i]),
                       futures[i].get());
  }
}

TEST(QueryEngineTest, PlannerPicksPvWithoutOverride) {
  EngineWorld& world = SharedWorld();
  auto engine = QueryEngine::Create(world.db.get(), world.All(), {}).value();
  EXPECT_EQ(engine->active_backend(), BackendKind::kPvIndex);
  EXPECT_FALSE(engine->plan_reason().empty());
}

TEST(QueryEngineTest, OutOfDomainQueryFailsOnlyThatAnswer) {
  EngineWorld& world = SharedWorld();
  auto engine = QueryEngine::Create(world.db.get(), world.All(), {}).value();
  std::vector<geom::Point> queries{geom::Point{500, 500},
                                   geom::Point{5000, 5000}};  // outside
  const auto answers = engine->ExecuteBatch(PnnRequests(queries));
  ASSERT_EQ(answers.size(), 2u);
  EXPECT_TRUE(answers[0].status.ok());
  EXPECT_FALSE(answers[1].status.ok());
}

// ---------------------------------------------------------------------------
// QueryEngine: batched Step 2 (group-then-sweep) vs per-query serving
// ---------------------------------------------------------------------------

TEST_P(QueryEngineBackendTest, BatchedStep2BitIdenticalToPerQueryEngine) {
  // The same clustered batch through a grouped engine and a per-query
  // engine: answers must match bit-for-bit, and the clusters must actually
  // exercise the candidate-outer sweep (not the singleton fallback).
  EngineWorld& world = SharedWorld();
  QueryEngineOptions grouped_options;
  grouped_options.threads = 4;
  grouped_options.backend_override = GetParam();
  grouped_options.batch_step2 = true;
  auto grouped =
      QueryEngine::Create(world.db.get(), world.All(), grouped_options)
          .value();
  QueryEngineOptions per_query_options = grouped_options;
  per_query_options.batch_step2 = false;
  auto per_query =
      QueryEngine::Create(world.db.get(), world.All(), per_query_options)
          .value();

  // Clusters of queries jittered around shared anchors land in shared
  // leaves with (mostly) identical surviving candidate sets.
  Rng rng(4242);
  std::vector<geom::Point> queries;
  for (int c = 0; c < 8; ++c) {
    const geom::Point anchor{rng.NextUniform(50, 950),
                             rng.NextUniform(50, 950)};
    for (int i = 0; i < 16; ++i) {
      queries.push_back(geom::Point{anchor[0] + rng.NextUniform(-1, 1),
                                    anchor[1] + rng.NextUniform(-1, 1)});
    }
  }

  ServiceStats stats;
  const std::vector<QueryRequest> requests = PnnRequests(queries);
  const auto batched_answers = grouped->ExecuteBatch(requests, &stats);
  const auto per_query_answers = per_query->ExecuteBatch(requests);
  ASSERT_EQ(batched_answers.size(), per_query_answers.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    SCOPED_TRACE("query " + std::to_string(i));
    ASSERT_TRUE(per_query_answers[i].status.ok());
    ExpectAnswersEqual(per_query_answers[i].results, batched_answers[i]);
  }
  EXPECT_GT(stats.step2_groups, 0)
      << "clustered queries must reach the batched sweep";
  EXPECT_GT(stats.step2_grouped_queries, stats.step2_groups)
      << "groups must hold more than one query each on average";
}

TEST(QueryEngineTest, BatchedStep2WorksWithoutLeafCache) {
  // Grouping keys off the leaf id even when the leaf-result cache is
  // disabled; answers stay identical to the sequential pipeline.
  EngineWorld& world = SharedWorld();
  QueryEngineOptions options;
  options.threads = 2;
  options.backend_override = BackendKind::kPvIndex;
  options.cache_capacity = 0;
  auto engine =
      QueryEngine::Create(world.db.get(), world.All(), options).value();
  std::vector<geom::Point> queries(24, geom::Point{500, 500});
  ServiceStats stats;
  const auto answers = engine->ExecuteBatch(PnnRequests(queries), &stats);
  EXPECT_GT(stats.step2_groups, 0);
  const auto expected = world.Sequential(BackendKind::kPvIndex, queries[0]);
  for (size_t i = 0; i < answers.size(); ++i) {
    SCOPED_TRACE("query " + std::to_string(i));
    ExpectAnswersEqual(expected, answers[i]);
  }
}

TEST(QueryEngineTest, BatchedStep2DedupsPdfPageCharges) {
  // Identical queries form one group: the batched engine charges each
  // candidate's record once for the whole group, where the per-query engine
  // charges it once per query. Regression test for the batch-path I/O
  // accounting.
  EngineWorld& world = SharedWorld();
  const geom::Point q{500, 500};
  const size_t repeats = 32;
  const std::vector<geom::Point> queries(repeats, q);

  pv::PnnStep2Evaluator step2(world.db.get());
  const std::vector<uncertain::ObjectId> step1 =
      world.pv->QueryPossibleNN(q).value();
  int64_t per_group = 0;
  for (uncertain::ObjectId id : step1) {
    per_group += step2.RecordPages(*world.db->Find(id));
  }
  ASSERT_GT(per_group, 0);

  QueryEngineOptions options;
  options.threads = 2;
  options.backend_override = BackendKind::kPvIndex;
  auto batched =
      QueryEngine::Create(world.db.get(), world.All(), options).value();
  batched->ExecuteBatch(PnnRequests(queries));
  EXPECT_EQ(batched->metrics().Get(pv::PnnCounters::kPdfPagesRead), per_group);

  options.batch_step2 = false;
  auto per_query =
      QueryEngine::Create(world.db.get(), world.All(), options).value();
  per_query->ExecuteBatch(PnnRequests(queries));
  EXPECT_EQ(per_query->metrics().Get(pv::PnnCounters::kPdfPagesRead),
            per_group * static_cast<int64_t>(repeats));
}

// ---------------------------------------------------------------------------
// QueryEngine: cache hits and invalidation across insert/delete
// ---------------------------------------------------------------------------

TEST(QueryEngineTest, CacheHitThenInvalidationOnInsertAndDelete) {
  EngineWorld world;
  QueryEngineOptions options;
  options.threads = 2;
  options.backend_override = BackendKind::kPvIndex;
  auto engine =
      QueryEngine::Create(world.db.get(), world.All(), options).value();

  const std::vector<geom::Point> queries{geom::Point{500, 500}};
  auto first = engine->ExecuteBatch(PnnRequests(queries));
  ASSERT_TRUE(first[0].status.ok());
  EXPECT_FALSE(first[0].cache_hit);
  auto second = engine->ExecuteBatch(PnnRequests(queries));
  EXPECT_TRUE(second[0].cache_hit);
  {
    SCOPED_TRACE("second-vs-first");
    ExpectAnswersEqual(first[0].results, second[0]);
  }
  EXPECT_GE(engine->cache()->size(), 1u);

  // Insert near the query: the hook must flush the PV cache so the next
  // answer reflects the new object.
  Rng rng(77);
  const uncertain::ObjectId new_id = 1000000;
  ASSERT_TRUE(engine
                  ->Insert(uncertain::UncertainObject::UniformSampled(
                      new_id,
                      geom::Rect(geom::Point{495, 495}, geom::Point{505, 505}),
                      40, &rng))
                  .ok());
  EXPECT_EQ(engine->cache()->size(), 0u) << "insert must invalidate the cache";

  auto third = engine->ExecuteBatch(PnnRequests(queries));
  ASSERT_TRUE(third[0].status.ok());
  EXPECT_FALSE(third[0].cache_hit);
  {
    SCOPED_TRACE("third-vs-sequential");
    ExpectAnswersEqual(world.Sequential(BackendKind::kPvIndex, queries[0]),
                       third[0]);  // same index state: exact
  }
  const bool new_object_answers =
      std::any_of(third[0].results.begin(), third[0].results.end(),
                  [&](const pv::PnnResult& r) { return r.id == new_id; });
  EXPECT_TRUE(new_object_answers)
      << "an object overlapping the query point must be a PNNQ answer";

  // Delete it again: cache flushed, answers return to the original set.
  engine->ExecuteBatch(PnnRequests(queries));  // warm the cache once more
  ASSERT_TRUE(engine->Delete(new_id).ok());
  EXPECT_EQ(engine->cache()->size(), 0u) << "delete must invalidate the cache";
  auto fourth = engine->ExecuteBatch(PnnRequests(queries));
  ExpectAnswersClose(first[0].results, fourth[0]);
}

TEST(QueryEngineTest, MutationsRequirePvBackend) {
  EngineWorld& world = SharedWorld();  // mutation is rejected before any write
  QueryEngineOptions options;
  options.backend_override = BackendKind::kRtree;
  auto engine =
      QueryEngine::Create(world.db.get(), world.All(), options).value();
  Rng rng(3);
  EXPECT_EQ(engine
                ->Insert(uncertain::UncertainObject::UniformSampled(
                    999999, geom::Rect::Cube(2, 10, 20), 10, &rng))
                .code(),
            StatusCode::kNotSupported);
}

// ---------------------------------------------------------------------------
// QueryEngine: concurrency stress
// ---------------------------------------------------------------------------

TEST(QueryEngineTest, StressNoLostOrDuplicatedAnswers) {
  EngineWorld& world = SharedWorld();
  QueryEngineOptions options;
  options.threads = 4;
  options.backend_override = BackendKind::kPvIndex;
  auto engine =
      QueryEngine::Create(world.db.get(), world.All(), options).value();

  const auto queries = world.RandomQueries(2000, 13);
  std::vector<std::vector<pv::PnnResult>> expected;
  expected.reserve(queries.size());
  for (const auto& q : queries) {
    expected.push_back(world.Sequential(BackendKind::kPvIndex, q));
  }

  // Four external threads hammer the same engine with the full batch each;
  // every caller must get its complete, correctly-ordered answer vector.
  std::vector<std::thread> callers;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&] {
      const auto answers = engine->ExecuteBatch(PnnRequests(queries));
      if (answers.size() != queries.size()) {
        failures.fetch_add(1);
        return;
      }
      for (size_t i = 0; i < queries.size(); ++i) {
        if (!answers[i].status.ok() ||
            answers[i].results.size() != expected[i].size()) {
          failures.fetch_add(1);
          return;
        }
        for (size_t j = 0; j < expected[i].size(); ++j) {
          if (answers[i].results[j].id != expected[i][j].id ||
              answers[i].results[j].probability !=
                  expected[i][j].probability) {
            failures.fetch_add(1);
            return;
          }
        }
      }
    });
  }
  for (auto& c : callers) c.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(QueryEngineTest, MutationsInterleaveSafelyWithQueries) {
  EngineWorld world;
  QueryEngineOptions options;
  options.threads = 4;
  options.backend_override = BackendKind::kPvIndex;
  auto engine =
      QueryEngine::Create(world.db.get(), world.All(), options).value();

  // One external thread streams async queries while this thread runs
  // insert/delete cycles. Probabilities must always form a distribution
  // (the engine never serves a half-updated index).
  std::atomic<bool> stop{false};
  std::thread querier([&] {
    Rng rng(55);
    while (!stop.load()) {
      const geom::Point q{rng.NextUniform(0, 1000), rng.NextUniform(0, 1000)};
      const QueryAnswer ans = engine->Submit(QueryRequest::Pnn(q)).get();
      if (!ans.status.ok()) {
        ADD_FAILURE() << ans.status.ToString();
        return;
      }
      if (!ans.results.empty()) {
        double total = 0;
        for (const auto& r : ans.results) total += r.probability;
        if (std::abs(total - 1.0) > 1e-6) {
          ADD_FAILURE() << "probabilities sum to " << total;
          return;
        }
      }
    }
  });

  Rng rng(66);
  for (int cycle = 0; cycle < 10; ++cycle) {
    const uncertain::ObjectId id = 2000000 + static_cast<uint64_t>(cycle);
    geom::Point lo{rng.NextUniform(0, 980), rng.NextUniform(0, 980)};
    geom::Point hi{lo[0] + 15, lo[1] + 15};
    ASSERT_TRUE(engine
                    ->Insert(uncertain::UncertainObject::UniformSampled(
                        id, geom::Rect(lo, hi), 20, &rng))
                    .ok());
    ASSERT_TRUE(engine->Delete(id).ok());
  }
  stop.store(true);
  querier.join();
}

// ---------------------------------------------------------------------------
// QueryEngineOptions validation (construction-time, instead of UB in the
// pool or the batch sweep)
// ---------------------------------------------------------------------------

TEST(QueryEngineOptionsTest, InvalidTunablesAreRejectedAtCreate) {
  EngineWorld& world = SharedWorld();

  QueryEngineOptions zero_threads;
  zero_threads.threads = 0;
  EXPECT_EQ(QueryEngine::Create(world.db.get(), world.All(), zero_threads)
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  QueryEngineOptions negative_threads;
  negative_threads.threads = -4;
  EXPECT_EQ(ValidateQueryEngineOptions(negative_threads).code(),
            StatusCode::kInvalidArgument);

  QueryEngineOptions absurd_threads;
  absurd_threads.threads = 1 << 20;
  EXPECT_EQ(ValidateQueryEngineOptions(absurd_threads).code(),
            StatusCode::kInvalidArgument);

  QueryEngineOptions zero_group;
  zero_group.batch_step2 = true;
  zero_group.step2_min_group_size = 0;
  EXPECT_EQ(QueryEngine::Create(world.db.get(), world.All(), zero_group)
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  QueryEngineOptions bad_probability;
  bad_probability.min_probability = 1.5;
  EXPECT_EQ(ValidateQueryEngineOptions(bad_probability).code(),
            StatusCode::kInvalidArgument);
  bad_probability.min_probability = -0.25;
  EXPECT_EQ(ValidateQueryEngineOptions(bad_probability).code(),
            StatusCode::kInvalidArgument);

  // The defaults (and a 1-thread config) stay valid.
  EXPECT_TRUE(ValidateQueryEngineOptions(QueryEngineOptions{}).ok());
  QueryEngineOptions one_thread;
  one_thread.threads = 1;
  EXPECT_TRUE(ValidateQueryEngineOptions(one_thread).ok());
}

// ---------------------------------------------------------------------------
// Snapshot hot-swap under concurrent serving
// ---------------------------------------------------------------------------

TEST(QueryEngineTest, AdoptSnapshotHotSwapsUnderConcurrentQueries) {
  // Two sealed generations of the same 2D world: generation B has one extra
  // object near the probe point, so answers tell the generations apart.
  uncertain::SyntheticOptions synth;
  synth.dim = 2;
  synth.count = 300;
  synth.samples_per_object = 20;
  synth.max_region_extent = 150;
  synth.domain_hi = 1000;
  synth.seed = 31;
  uncertain::Dataset db = uncertain::GenerateSynthetic(synth);
  auto builder = pv::PvIndexBuilder::Build(db).value();
  auto snap_a = builder->Seal().value();

  Rng rng(41);
  const uncertain::ObjectId extra_id = 3000000;
  ASSERT_TRUE(db.Add(uncertain::UncertainObject::UniformSampled(
                         extra_id,
                         geom::Rect(geom::Point{490, 490},
                                    geom::Point{510, 510}),
                         20, &rng))
                  .ok());
  ASSERT_TRUE(builder->Insert(db, extra_id).ok());
  auto snap_b = builder->Seal().value();

  QueryEngineOptions options;
  options.threads = 4;
  auto engine = QueryEngine::CreateFromSnapshot(snap_a, options).value();
  EXPECT_EQ(engine->active_backend(), BackendKind::kSnapshot);

  // Queriers hammer batched and async paths while the main thread flips
  // between the generations. Every answer must be internally consistent:
  // status ok and a probability distribution — a swap must never surface a
  // half-state (e.g. generation-B candidates scored with generation-A
  // records, which would break the sum).
  std::atomic<bool> stop{false};
  std::atomic<int> batches{0};
  std::vector<std::thread> queriers;
  for (int t = 0; t < 2; ++t) {
    queriers.emplace_back([&, t] {
      Rng qrng(100 + t);
      while (!stop.load()) {
        std::vector<geom::Point> queries;
        for (int i = 0; i < 32; ++i) {
          // Half clustered at the probe point (shared candidate sets keep
          // the grouped sweep busy), half uniform.
          if (i % 2 == 0) {
            queries.push_back(geom::Point{500 + qrng.NextUniform(-2, 2),
                                          500 + qrng.NextUniform(-2, 2)});
          } else {
            queries.push_back(geom::Point{qrng.NextUniform(0, 1000),
                                          qrng.NextUniform(0, 1000)});
          }
        }
        const auto answers = engine->ExecuteBatch(PnnRequests(queries));
        if (answers.size() != queries.size()) {
          ADD_FAILURE() << "lost answers";
          return;
        }
        for (const auto& a : answers) {
          if (!a.status.ok()) {
            ADD_FAILURE() << a.status.ToString();
            return;
          }
          if (!a.results.empty()) {
            double total = 0;
            for (const auto& r : a.results) total += r.probability;
            if (std::abs(total - 1.0) > 1e-6) {
              ADD_FAILURE() << "probabilities sum to " << total;
              return;
            }
          }
        }
        batches.fetch_add(1);
      }
    });
  }

  for (int cycle = 0; cycle < 50; ++cycle) {
    const Status adopted =
        engine->AdoptSnapshot(cycle % 2 == 0 ? snap_b : snap_a);
    if (!adopted.ok()) {
      ADD_FAILURE() << adopted.ToString();
      break;
    }
    std::this_thread::yield();
  }
  // Let at least a few batches land across the swaps before stopping — but
  // never spin forever: a querier that bailed via ADD_FAILURE stops
  // incrementing, and a deadline turns that into a failed test instead of
  // a hung job.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (batches.load() < 8 && !::testing::Test::HasFailure() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_GE(batches.load(), 1) << "no batch completed across the swaps";
  stop.store(true);
  for (auto& t : queriers) t.join();

  // Settle on generation B and check the swap actually took effect, with
  // bit-identical answers to the sealed snapshot's own pipeline.
  ASSERT_TRUE(engine->AdoptSnapshot(snap_b).ok());
  EXPECT_EQ(engine->snapshot(), snap_b);
  const geom::Point probe{500, 500};
  const QueryAnswer served =
      engine->Submit(QueryRequest::Pnn(probe)).get();
  ASSERT_TRUE(served.status.ok());
  const bool extra_answers =
      std::any_of(served.results.begin(), served.results.end(),
                  [&](const pv::PnnResult& r) { return r.id == extra_id; });
  EXPECT_TRUE(extra_answers) << "generation B must serve the new object";

  pv::PnnStep2Evaluator step2(snap_b.get());
  const auto expected_step1 = snap_b->QueryPossibleNN(probe).value();
  const auto expected = step2.Evaluate(probe, expected_step1);
  ASSERT_EQ(served.results.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(served.results[i].id, expected[i].id);
    EXPECT_EQ(served.results[i].probability, expected[i].probability);
  }
}

}  // namespace
}  // namespace pvdb::service
