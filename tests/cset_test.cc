// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Tests for the chooseCSet strategies (Section V-A): ALL / FS / IS
// semantics, the FS weaknesses the paper documents, IS quadrant counters
// and overlap skipping.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/common/random.h"
#include "src/pv/cset.h"
#include "src/uncertain/datagen.h"

namespace pvdb::pv {
namespace {

struct CSetFixture {
  explicit CSetFixture(int dim, size_t count, uint64_t seed = 7,
                       double extent = 30.0) {
    uncertain::SyntheticOptions options;
    options.dim = dim;
    options.count = count;
    options.samples_per_object = 4;  // pdf irrelevant here
    options.max_region_extent = extent;
    options.seed = seed;
    db = std::make_unique<uncertain::Dataset>(
        uncertain::GenerateSynthetic(options));
    mean_tree = std::make_unique<rtree::RStarTree>(dim);
    for (const auto& o : db->objects()) {
      mean_tree->Insert(geom::Rect::FromPoint(o.MeanPosition()), o.id());
    }
  }

  std::unique_ptr<uncertain::Dataset> db;
  std::unique_ptr<rtree::RStarTree> mean_tree;
};

TEST(CSetTest, AllReturnsEverythingButSelf) {
  CSetFixture fx(2, 100);
  const auto& o = fx.db->objects()[5];
  CSetOptions options;
  options.strategy = CSetStrategy::kAll;
  const CSetResult cs = ChooseCSet(o, *fx.db, *fx.mean_tree, options);
  EXPECT_EQ(cs.ids.size(), 99u);
  EXPECT_EQ(cs.regions.size(), 99u);
  EXPECT_EQ(std::count(cs.ids.begin(), cs.ids.end(), o.id()), 0);
}

TEST(CSetTest, FixedReturnsKNearestMeans) {
  CSetFixture fx(2, 300);
  const auto& o = fx.db->objects()[0];
  CSetOptions options;
  options.strategy = CSetStrategy::kFixed;
  options.k = 25;
  const CSetResult cs = ChooseCSet(o, *fx.db, *fx.mean_tree, options);
  ASSERT_EQ(cs.ids.size(), 25u);

  // Brute-force k nearest mean positions.
  std::vector<std::pair<double, uncertain::ObjectId>> oracle;
  for (const auto& other : fx.db->objects()) {
    if (other.id() == o.id()) continue;
    oracle.emplace_back(
        other.MeanPosition().DistanceTo(o.MeanPosition()), other.id());
  }
  std::sort(oracle.begin(), oracle.end());
  std::set<uncertain::ObjectId> expected;
  for (int i = 0; i < 25; ++i) expected.insert(oracle[static_cast<size_t>(i)].second);
  std::set<uncertain::ObjectId> got(cs.ids.begin(), cs.ids.end());
  EXPECT_EQ(got, expected);
}

TEST(CSetTest, FixedKeepsOverlappingNeighbors) {
  // Paper (Section V-A): FS does not discard objects overlapping u(o).
  Rng rng(3);
  uncertain::Dataset db(geom::Rect::Cube(2, 0, 1000));
  ASSERT_TRUE(db.Add(uncertain::UncertainObject::UniformSampled(
                        0, geom::Rect(geom::Point{100, 100},
                                      geom::Point{120, 120}),
                        3, &rng))
                  .ok());
  // Overlapping neighbor.
  ASSERT_TRUE(db.Add(uncertain::UncertainObject::UniformSampled(
                        1, geom::Rect(geom::Point{110, 110},
                                      geom::Point{130, 130}),
                        3, &rng))
                  .ok());
  // Distant neighbor.
  ASSERT_TRUE(db.Add(uncertain::UncertainObject::UniformSampled(
                        2, geom::Rect(geom::Point{800, 800},
                                      geom::Point{805, 805}),
                        3, &rng))
                  .ok());
  rtree::RStarTree mean_tree(2);
  for (const auto& o : db.objects()) {
    mean_tree.Insert(geom::Rect::FromPoint(o.MeanPosition()), o.id());
  }
  CSetOptions options;
  options.strategy = CSetStrategy::kFixed;
  options.k = 1;
  const CSetResult cs = ChooseCSet(*db.Find(0), db, mean_tree, options);
  ASSERT_EQ(cs.ids.size(), 1u);
  EXPECT_EQ(cs.ids[0], 1u) << "FS keeps the overlapping nearest neighbor";

  // IS skips it and returns the useful distant one instead.
  options.strategy = CSetStrategy::kIncremental;
  options.k_partition = 1;
  options.k_global = 10;
  const CSetResult is = ChooseCSet(*db.Find(0), db, mean_tree, options);
  EXPECT_EQ(std::count(is.ids.begin(), is.ids.end(), 1u), 0)
      << "IS must skip neighbors overlapping u(o) (Lemma 2)";
  EXPECT_EQ(std::count(is.ids.begin(), is.ids.end(), 2u), 1);
}

TEST(CSetTest, IncrementalRespectsGlobalCap) {
  CSetFixture fx(2, 500);
  const auto& o = fx.db->objects()[10];
  CSetOptions options;
  options.strategy = CSetStrategy::kIncremental;
  options.k_partition = 1000;  // unreachable
  options.k_global = 60;
  const CSetResult cs = ChooseCSet(o, *fx.db, *fx.mean_tree, options);
  EXPECT_LE(cs.examined, 60);
  EXPECT_LE(cs.ids.size(), 60u);
  EXPECT_GT(cs.ids.size(), 0u);
}

TEST(CSetTest, IncrementalSatisfiesQuadrantCounters) {
  CSetFixture fx(2, 2000, /*seed=*/11, /*extent=*/5.0);
  const auto& o = fx.db->objects()[100];
  CSetOptions options;
  options.strategy = CSetStrategy::kIncremental;
  options.k_partition = 3;
  options.k_global = 2000;
  const CSetResult cs = ChooseCSet(o, *fx.db, *fx.mean_tree, options);

  // Recount per quadrant: each of the 4 quadrants around o's mean must have
  // seen at least k_partition selected regions (the domain is dense and
  // uniform, so the counters are satisfiable).
  const geom::Point pivot = o.MeanPosition();
  int counters[4] = {0, 0, 0, 0};
  for (const auto& region : cs.regions) {
    for (unsigned mask = 0; mask < 4; ++mask) {
      bool hit = true;
      for (int i = 0; i < 2 && hit; ++i) {
        hit = (mask >> i) & 1u ? region.hi(i) >= pivot[i]
                               : region.lo(i) <= pivot[i];
      }
      if (hit) ++counters[mask];
    }
  }
  for (int c : counters) EXPECT_GE(c, 3);
  // And IS should have stopped well before exhausting the database.
  EXPECT_LT(cs.examined, 1000);
}

TEST(CSetTest, IncrementalNoDuplicatesNoSelf) {
  CSetFixture fx(3, 400);
  for (size_t i = 0; i < 10; ++i) {
    const auto& o = fx.db->objects()[i * 13];
    CSetOptions options;
    const CSetResult cs = ChooseCSet(o, *fx.db, *fx.mean_tree, options);
    std::set<uncertain::ObjectId> unique(cs.ids.begin(), cs.ids.end());
    EXPECT_EQ(unique.size(), cs.ids.size());
    EXPECT_EQ(unique.count(o.id()), 0u);
    EXPECT_EQ(cs.ids.size(), cs.regions.size());
  }
}

TEST(CSetTest, IncrementalSmallerThanFixedOnAverage) {
  // Section VII-C(b): IS returns smaller C-sets than FS at defaults.
  CSetFixture fx(3, 1500);
  CSetOptions fs;
  fs.strategy = CSetStrategy::kFixed;
  fs.k = 200;
  CSetOptions is;
  is.strategy = CSetStrategy::kIncremental;
  is.k_partition = 10;
  is.k_global = 200;
  double fs_total = 0, is_total = 0;
  for (size_t i = 0; i < 40; ++i) {
    const auto& o = fx.db->objects()[i * 17];
    fs_total += static_cast<double>(
        ChooseCSet(o, *fx.db, *fx.mean_tree, fs).ids.size());
    is_total += static_cast<double>(
        ChooseCSet(o, *fx.db, *fx.mean_tree, is).ids.size());
  }
  EXPECT_LT(is_total, fs_total);
}

TEST(CSetTest, StrategyNames) {
  EXPECT_STREQ(CSetStrategyName(CSetStrategy::kAll), "ALL");
  EXPECT_STREQ(CSetStrategyName(CSetStrategy::kFixed), "FS");
  EXPECT_STREQ(CSetStrategyName(CSetStrategy::kIncremental), "IS");
}

}  // namespace
}  // namespace pvdb::pv
