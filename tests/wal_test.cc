// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Storage-layer durability tests: the Env seam (atomic writes, errno
// detail), the FaultInjectionEnv itself (unsynced-data drops, metadata
// reverts, op budgets), the CRC-32C kernel, and the WAL (round trip, group
// commit, torn tails at every cut point, bit flips, fail-the-Nth-syscall
// sweeps) — plus the snapshot-save durability proofs: the parent-directory
// fsync after rename is demonstrated to MATTER by dropping unsynced
// metadata with and without it.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/check.h"
#include "src/common/crc32c.h"
#include "src/pv/pv_index_builder.h"
#include "src/storage/env.h"
#include "src/storage/fault_env.h"
#include "src/storage/snapshot_file.h"
#include "src/storage/wal.h"
#include "src/uncertain/datagen.h"

namespace pvdb {
namespace {

using storage::Env;
using storage::FaultInjectionEnv;
using storage::WalOptions;
using storage::WalReplay;
using storage::WalReplayStats;
using storage::WalWriter;

std::string TempDirPath(const std::string& name) {
  return ::testing::TempDir() + "pvdb_" + name + "_" +
         std::to_string(::getpid());
}

/// Fresh scratch directory, recursively removed on destruction.
struct ScratchDir {
  explicit ScratchDir(const std::string& name) : path(TempDirPath(name)) {
    RemoveAll();
    PVDB_CHECK(Env::Default()->CreateDirIfMissing(path).ok());
  }
  ~ScratchDir() { RemoveAll(); }
  void RemoveAll() {
    auto children = Env::Default()->GetChildren(path);
    if (children.ok()) {
      for (const std::string& name : children.value()) {
        std::remove((path + "/" + name).c_str());
      }
    }
    ::rmdir(path.c_str());
  }
  std::string path;
};

std::vector<uint8_t> Bytes(std::initializer_list<uint8_t> b) { return b; }

std::span<const uint8_t> AsSpan(const std::string& s) {
  return {reinterpret_cast<const uint8_t*>(s.data()), s.size()};
}

std::string ReadAll(Env* env, const std::string& path) {
  std::vector<uint8_t> bytes;
  PVDB_CHECK(env->ReadFile(path, &bytes).ok());
  return std::string(bytes.begin(), bytes.end());
}

// ---------------------------------------------------------------------------
// CRC-32C
// ---------------------------------------------------------------------------

TEST(Crc32cTest, KnownVectors) {
  // The canonical check value: CRC-32C("123456789") = 0xE3069283.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  // RFC 3720 (iSCSI) appendix vectors.
  std::vector<uint8_t> zeros(32, 0);
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
  std::vector<uint8_t> ones(32, 0xFF);
  EXPECT_EQ(Crc32c(ones.data(), ones.size()), 0x62A8AB43u);
  EXPECT_EQ(Crc32c(nullptr, 0), 0u);
}

TEST(Crc32cTest, ExtendComposes) {
  const char* data = "hello, write-ahead world";
  const size_t n = std::strlen(data);
  const uint32_t whole = Crc32c(data, n);
  uint32_t piecewise = Crc32cExtend(0, data, 5);
  piecewise = Crc32cExtend(piecewise, data + 5, n - 5);
  EXPECT_EQ(piecewise, whole);
  EXPECT_NE(Crc32c(data, n - 1), whole);
}

// ---------------------------------------------------------------------------
// Env / WriteFileAtomic
// ---------------------------------------------------------------------------

TEST(EnvTest, ParentDir) {
  EXPECT_EQ(storage::ParentDir("/a/b/c.snap"), "/a/b");
  EXPECT_EQ(storage::ParentDir("/top"), "/");
  EXPECT_EQ(storage::ParentDir("bare.snap"), ".");
}

TEST(EnvTest, WriteFileAtomicRoundTripLeavesNoTemp) {
  ScratchDir dir("env_atomic");
  const std::string path = dir.path + "/file.bin";
  ASSERT_TRUE(storage::WriteFileAtomic(Env::Default(), path,
                                       AsSpan("payload"))
                  .ok());
  EXPECT_EQ(ReadAll(Env::Default(), path), "payload");
  EXPECT_FALSE(Env::Default()->FileExists(path + ".tmp"));

  // Replace: the old content is swapped atomically.
  ASSERT_TRUE(
      storage::WriteFileAtomic(Env::Default(), path, AsSpan("v2")).ok());
  EXPECT_EQ(ReadAll(Env::Default(), path), "v2");
}

TEST(EnvTest, ErrorsCarryErrnoDetail) {
  auto file = Env::Default()->NewWritableFile("/no/such/dir/x.bin");
  ASSERT_FALSE(file.ok());
  EXPECT_EQ(file.status().code(), StatusCode::kIOError);
  EXPECT_NE(file.status().message().find("No such file or directory"),
            std::string::npos)
      << file.status().ToString();
}

TEST(EnvTest, FailedAtomicWriteRemovesStaleTemp) {
  ScratchDir dir("env_failed_atomic");
  // The destination is a DIRECTORY: the final rename must fail after the
  // temp file was fully written — exactly the stale-temp window.
  const std::string target = dir.path + "/subdir";
  ASSERT_TRUE(Env::Default()->CreateDirIfMissing(target).ok());
  const Status st =
      storage::WriteFileAtomic(Env::Default(), target, AsSpan("doomed"));
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("rename"), std::string::npos)
      << st.ToString();
  EXPECT_FALSE(Env::Default()->FileExists(target + ".tmp"));
  ::rmdir(target.c_str());
}

// ---------------------------------------------------------------------------
// FaultInjectionEnv semantics
// ---------------------------------------------------------------------------

TEST(FaultEnvTest, DropUnsyncedFileDataTruncatesToSyncedFloor) {
  ScratchDir dir("fenv_data");
  FaultInjectionEnv fenv(Env::Default());
  const std::string path = dir.path + "/f.bin";
  auto file = fenv.NewWritableFile(path, true).value();
  ASSERT_TRUE(file->Append(AsSpan("durable")).ok());
  ASSERT_TRUE(file->Sync().ok());
  ASSERT_TRUE(file->Append(AsSpan("-volatile")).ok());
  ASSERT_TRUE(fenv.DropUnsyncedFileData().ok());
  EXPECT_EQ(ReadAll(&fenv, path), "durable");
}

TEST(FaultEnvTest, DropUnsyncedMetadataDeletesUnsyncedCreate) {
  ScratchDir dir("fenv_meta");
  FaultInjectionEnv fenv(Env::Default());
  const std::string synced = dir.path + "/synced.bin";
  const std::string unsynced = dir.path + "/unsynced.bin";
  {
    auto f = fenv.NewWritableFile(synced, true).value();
    ASSERT_TRUE(f->Append(AsSpan("a")).ok());
    ASSERT_TRUE(f->Sync().ok());
    ASSERT_TRUE(f->Close().ok());
  }
  ASSERT_TRUE(fenv.SyncDir(dir.path).ok());
  {
    auto f = fenv.NewWritableFile(unsynced, true).value();
    ASSERT_TRUE(f->Append(AsSpan("b")).ok());
    ASSERT_TRUE(f->Sync().ok());  // file DATA synced; the dirent is not
    ASSERT_TRUE(f->Close().ok());
  }
  ASSERT_TRUE(fenv.DropUnsyncedMetadata().ok());
  EXPECT_TRUE(fenv.FileExists(synced));
  EXPECT_FALSE(fenv.FileExists(unsynced));
}

TEST(FaultEnvTest, RenameOverExistingRevertsToOldContent) {
  ScratchDir dir("fenv_replace");
  FaultInjectionEnv fenv(Env::Default());
  const std::string current = dir.path + "/CURRENT";
  ASSERT_TRUE(storage::WriteFileAtomic(&fenv, current, AsSpan("gen 1")).ok());
  // Replace WITHOUT the directory sync: tmp -> rename only.
  {
    auto f = fenv.NewWritableFile(current + ".tmp", true).value();
    ASSERT_TRUE(f->Append(AsSpan("gen 2")).ok());
    ASSERT_TRUE(f->Sync().ok());
    ASSERT_TRUE(f->Close().ok());
  }
  ASSERT_TRUE(fenv.RenameFile(current + ".tmp", current).ok());
  EXPECT_EQ(ReadAll(&fenv, current), "gen 2");
  // The crash keeps the OLD manifest — the new dirent was never durable.
  ASSERT_TRUE(fenv.DropUnsyncedMetadata().ok());
  EXPECT_EQ(ReadAll(&fenv, current), "gen 1");
}

TEST(FaultEnvTest, OpBudgetIsStickyAndNamesTheOp) {
  ScratchDir dir("fenv_budget");
  FaultInjectionEnv fenv(Env::Default());
  fenv.SetOpBudget(1);  // the open succeeds, everything after fails
  auto file = fenv.NewWritableFile(dir.path + "/f.bin", true);
  ASSERT_TRUE(file.ok());
  Status st = file.value()->Append(AsSpan("x"));
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("injected fault"), std::string::npos);
  EXPECT_NE(st.message().find("write"), std::string::npos);
  // Sticky: the disk does not come back.
  EXPECT_FALSE(file.value()->Sync().ok());
  EXPECT_FALSE(fenv.SyncDir(dir.path).ok());
  fenv.ClearOpBudget();
  EXPECT_TRUE(file.value()->Append(AsSpan("y")).ok());
}

// ---------------------------------------------------------------------------
// WAL: round trip + group commit
// ---------------------------------------------------------------------------

TEST(WalTest, RoundTripPreservesOrderTypesAndPayloads) {
  ScratchDir dir("wal_roundtrip");
  const std::string path = dir.path + "/wal.log";
  std::vector<std::pair<uint8_t, std::vector<uint8_t>>> records = {
      {1, Bytes({1, 2, 3})},
      {2, Bytes({})},  // empty payload is legal
      {1, std::vector<uint8_t>(1000, 0xAB)},
      {7, Bytes({0xFF})},
  };
  {
    auto wal = WalWriter::Open(Env::Default(), path, WalOptions{}).value();
    for (const auto& [type, payload] : records) {
      ASSERT_TRUE(wal->Append(type, payload).ok());
    }
    EXPECT_EQ(wal->appended_records(), records.size());
    EXPECT_EQ(wal->synced_records(), records.size());  // sync_every_n = 1
    ASSERT_TRUE(wal->Close().ok());
  }
  std::vector<std::pair<uint8_t, std::vector<uint8_t>>> replayed;
  WalReplayStats stats;
  ASSERT_TRUE(WalReplay(Env::Default(), path,
                        [&](uint8_t type, std::span<const uint8_t> payload) {
                          replayed.emplace_back(
                              type, std::vector<uint8_t>(payload.begin(),
                                                         payload.end()));
                          return Status::OK();
                        },
                        &stats)
                  .ok());
  EXPECT_EQ(replayed, records);
  EXPECT_EQ(stats.records_applied, records.size());
  EXPECT_EQ(stats.bytes_dropped, 0u);
  EXPECT_FALSE(stats.tail_corrupt);
}

TEST(WalTest, MissingFileIsNotFound) {
  ScratchDir dir("wal_missing");
  EXPECT_EQ(WalReplay(Env::Default(), dir.path + "/absent.log", nullptr,
                      nullptr)
                .code(),
            StatusCode::kNotFound);
}

TEST(WalTest, GroupCommitSyncsEveryNth) {
  ScratchDir dir("wal_group");
  auto wal = WalWriter::Open(Env::Default(), dir.path + "/wal.log",
                             WalOptions{.sync_every_n = 4})
                 .value();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(wal->Append(1, Bytes({1})).ok());
  }
  EXPECT_EQ(wal->synced_records(), 0u);  // below the group threshold
  ASSERT_TRUE(wal->Append(1, Bytes({1})).ok());
  EXPECT_EQ(wal->synced_records(), 4u);  // the 4th append synced the group
  ASSERT_TRUE(wal->Append(1, Bytes({1})).ok());
  EXPECT_EQ(wal->synced_records(), 4u);
  ASSERT_TRUE(wal->Sync().ok());  // explicit sync raises the floor
  EXPECT_EQ(wal->synced_records(), 5u);
}

TEST(WalTest, SyncEveryZeroNeverSyncsOnAppend) {
  ScratchDir dir("wal_nosync");
  auto wal = WalWriter::Open(Env::Default(), dir.path + "/wal.log",
                             WalOptions{.sync_every_n = 0})
                 .value();
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(wal->Append(1, Bytes({9})).ok());
  }
  EXPECT_EQ(wal->synced_records(), 0u);
  // Close syncs the pending tail (a clean shutdown loses nothing).
  ASSERT_TRUE(wal->Close().ok());
}

TEST(WalTest, BoundedLossUnderGroupCommitCrash) {
  ScratchDir dir("wal_bounded");
  FaultInjectionEnv fenv(Env::Default());
  const std::string path = dir.path + "/wal.log";
  auto wal =
      WalWriter::Open(&fenv, path, WalOptions{.sync_every_n = 4}).value();
  // The caller's half of the durability protocol (as LiveIndex does it):
  // fsync the directory so the new log's dirent survives the crash.
  ASSERT_TRUE(fenv.SyncDir(dir.path).ok());
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(wal->Append(1, Bytes({static_cast<uint8_t>(i)})).ok());
  }
  EXPECT_EQ(wal->synced_records(), 4u);
  // Power loss: the 3 unsynced acks vanish — never more than n-1, and never
  // a record in the middle.
  ASSERT_TRUE(fenv.SimulateCrash().ok());
  WalReplayStats stats;
  std::vector<uint8_t> seen;
  ASSERT_TRUE(WalReplay(Env::Default(), path,
                        [&](uint8_t, std::span<const uint8_t> p) {
                          seen.push_back(p[0]);
                          return Status::OK();
                        },
                        &stats)
                  .ok());
  EXPECT_EQ(seen, Bytes({0, 1, 2, 3}));
  EXPECT_FALSE(stats.tail_corrupt);  // truncation landed on a boundary
}

// ---------------------------------------------------------------------------
// WAL: torn tails, bit flips, repair
// ---------------------------------------------------------------------------

/// Writes `n` one-byte-payload records and returns the record boundaries
/// (file offsets after the header and after each record).
std::vector<size_t> WriteSmallWal(const std::string& path, int n) {
  auto wal = WalWriter::Open(Env::Default(), path, WalOptions{}).value();
  std::vector<size_t> boundaries = {storage::kWalFileHeaderBytes};
  for (int i = 0; i < n; ++i) {
    PVDB_CHECK(wal->Append(1, Bytes({static_cast<uint8_t>(i)})).ok());
    boundaries.push_back(wal->file_bytes());
  }
  PVDB_CHECK(wal->Close().ok());
  return boundaries;
}

TEST(WalTest, TornTailAtEveryCutPointRecoversThePrefix) {
  ScratchDir dir("wal_torn");
  const std::string path = dir.path + "/wal.log";
  const std::vector<size_t> boundaries = WriteSmallWal(path, 5);
  std::vector<uint8_t> full;
  ASSERT_TRUE(Env::Default()->ReadFile(path, &full).ok());

  const std::string cut_path = dir.path + "/cut.log";
  for (size_t cut = 0; cut <= full.size(); ++cut) {
    // A copy truncated to `cut` bytes = power loss mid-write at that point.
    ASSERT_TRUE(storage::WriteFileAtomic(
                    Env::Default(), cut_path,
                    std::span<const uint8_t>(full.data(), cut))
                    .ok());
    size_t whole = 0;  // records fully contained in the cut prefix
    while (whole + 1 < boundaries.size() && boundaries[whole + 1] <= cut) {
      ++whole;
    }
    WalReplayStats stats;
    uint64_t applied = 0;
    const Status st = WalReplay(Env::Default(), cut_path,
                                [&](uint8_t, std::span<const uint8_t>) {
                                  ++applied;
                                  return Status::OK();
                                },
                                &stats);
    ASSERT_TRUE(st.ok()) << "cut=" << cut << ": " << st.ToString();
    EXPECT_EQ(applied, whole) << "cut=" << cut;
    if (cut < storage::kWalFileHeaderBytes) {
      // Torn creation: nothing recoverable, flagged unless empty.
      EXPECT_EQ(stats.tail_corrupt, cut != 0) << "cut=" << cut;
    } else {
      EXPECT_EQ(stats.valid_bytes, boundaries[whole]) << "cut=" << cut;
      EXPECT_EQ(stats.bytes_dropped, cut - boundaries[whole])
          << "cut=" << cut;
      EXPECT_EQ(stats.tail_corrupt, cut != boundaries[whole])
          << "cut=" << cut;
      if (stats.tail_corrupt) {
        EXPECT_FALSE(stats.tail_detail.empty()) << "cut=" << cut;
      }
    }
  }
}

TEST(WalTest, OpenRepairsTornTailBeforeAppending) {
  ScratchDir dir("wal_repair");
  const std::string path = dir.path + "/wal.log";
  const std::vector<size_t> boundaries = WriteSmallWal(path, 3);
  // Tear the last record in half.
  const size_t cut = (boundaries[2] + boundaries[3]) / 2;
  ASSERT_TRUE(Env::Default()->TruncateFile(path, cut).ok());

  WalReplayStats repair;
  auto wal = WalWriter::Open(Env::Default(), path, WalOptions{}, &repair);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  EXPECT_TRUE(repair.tail_corrupt);
  EXPECT_EQ(repair.records_applied, 2u);
  EXPECT_EQ(repair.bytes_dropped, cut - boundaries[2]);
  // New records land behind the repaired prefix and are reachable.
  ASSERT_TRUE(wal.value()->Append(1, Bytes({0xEE})).ok());
  ASSERT_TRUE(wal.value()->Close().ok());

  std::vector<uint8_t> seen;
  WalReplayStats stats;
  ASSERT_TRUE(WalReplay(Env::Default(), path,
                        [&](uint8_t, std::span<const uint8_t> p) {
                          seen.push_back(p[0]);
                          return Status::OK();
                        },
                        &stats)
                  .ok());
  EXPECT_EQ(seen, Bytes({0, 1, 0xEE}));
  EXPECT_FALSE(stats.tail_corrupt);
}

TEST(WalTest, BitFlipStopsReplayAtTheFlippedRecord) {
  ScratchDir dir("wal_flip");
  const std::string path = dir.path + "/wal.log";
  const std::vector<size_t> boundaries = WriteSmallWal(path, 4);
  std::vector<uint8_t> full;
  ASSERT_TRUE(Env::Default()->ReadFile(path, &full).ok());

  FaultInjectionEnv fenv(Env::Default());
  const std::string flip_path = dir.path + "/flip.log";
  // Flip every byte position of record 3 (header fields and payload alike):
  // replay must always deliver records 1-2 and never a corrupted record 3.
  for (size_t off = boundaries[2]; off < boundaries[3]; ++off) {
    ASSERT_TRUE(storage::WriteFileAtomic(Env::Default(), flip_path, full)
                    .ok());
    ASSERT_TRUE(fenv.FlipByte(flip_path, off).ok());
    WalReplayStats stats;
    std::vector<uint8_t> seen;
    const Status st = WalReplay(Env::Default(), flip_path,
                                [&](uint8_t, std::span<const uint8_t> p) {
                                  seen.push_back(p[0]);
                                  return Status::OK();
                                },
                                &stats);
    ASSERT_TRUE(st.ok()) << "off=" << off << ": " << st.ToString();
    EXPECT_EQ(seen, Bytes({0, 1})) << "off=" << off;
    EXPECT_TRUE(stats.tail_corrupt) << "off=" << off;
    EXPECT_EQ(stats.valid_bytes, boundaries[2]) << "off=" << off;
  }
}

TEST(WalTest, ForeignMagicIsCorruption) {
  ScratchDir dir("wal_magic");
  const std::string path = dir.path + "/wal.log";
  ASSERT_TRUE(storage::WriteFileAtomic(Env::Default(), path,
                                       AsSpan("NOTAWAL0morebytes"))
                  .ok());
  EXPECT_EQ(WalReplay(Env::Default(), path, nullptr, nullptr).code(),
            StatusCode::kCorruption);
}

TEST(WalTest, ImplausibleLengthReadsAsTornTail) {
  ScratchDir dir("wal_len");
  const std::string path = dir.path + "/wal.log";
  WriteSmallWal(path, 1);
  std::vector<uint8_t> full;
  ASSERT_TRUE(Env::Default()->ReadFile(path, &full).ok());
  // Append a record header whose length field is absurd.
  const uint32_t bogus_len = storage::kMaxWalRecordBytes + 1;
  full.resize(full.size() + storage::kWalRecordHeaderBytes, 0);
  std::memcpy(full.data() + full.size() - storage::kWalRecordHeaderBytes,
              &bogus_len, sizeof(bogus_len));
  ASSERT_TRUE(storage::WriteFileAtomic(Env::Default(), path, full).ok());

  WalReplayStats stats;
  ASSERT_TRUE(WalReplay(Env::Default(), path, nullptr, &stats).ok());
  EXPECT_EQ(stats.records_applied, 1u);
  EXPECT_TRUE(stats.tail_corrupt);
  EXPECT_NE(stats.tail_detail.find("implausible"), std::string::npos);
}

TEST(WalTest, OversizedAppendIsRejectedUpFront) {
  ScratchDir dir("wal_big");
  auto wal = WalWriter::Open(Env::Default(), dir.path + "/wal.log",
                             WalOptions{})
                 .value();
  std::vector<uint8_t> huge(storage::kMaxWalRecordBytes + 1);
  EXPECT_EQ(wal->Append(1, huge).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(wal->appended_records(), 0u);
}

TEST(WalTest, FailNthSyscallSweepNeverCorruptsThePrefix) {
  ScratchDir dir("wal_sweep");
  // For every budget: open a log on a healthy disk (dirent made durable,
  // as LiveIndex does), then run 6 appends + close against a disk that
  // dies at the Nth syscall, crash, and recover with a healthy one.
  // Whatever was acknowledged before the failure must replay; the log must
  // never be unreadable.
  for (int64_t budget = 0; budget < 16; ++budget) {
    const std::string path =
        dir.path + "/wal_" + std::to_string(budget) + ".log";
    FaultInjectionEnv fenv(Env::Default());
    uint64_t acked = 0;
    bool failed = false;
    {
      auto wal = WalWriter::Open(&fenv, path, WalOptions{}).value();
      ASSERT_TRUE(fenv.SyncDir(dir.path).ok());
      fenv.SetOpBudget(budget);
      for (int i = 0; i < 6; ++i) {
        const Status st = wal->Append(1, Bytes({static_cast<uint8_t>(i)}));
        if (!st.ok()) {
          EXPECT_NE(st.message().find("injected fault"), std::string::npos)
              << st.ToString();
          failed = true;
          break;
        }
        ++acked;
      }
      if (!failed) failed = !wal->Close().ok();
    }
    fenv.ClearOpBudget();
    ASSERT_TRUE(fenv.SimulateCrash().ok());
    ASSERT_TRUE(fenv.FileExists(path)) << "budget=" << budget;

    WalReplayStats stats;
    std::vector<uint8_t> seen;
    const Status replay = WalReplay(Env::Default(), path,
                                    [&](uint8_t, std::span<const uint8_t> p) {
                                      seen.push_back(p[0]);
                                      return Status::OK();
                                    },
                                    &stats);
    ASSERT_TRUE(replay.ok()) << "budget=" << budget << ": "
                             << replay.ToString();
    // The recovered log is a clean prefix of the acked stream; with
    // sync_every_n = 1 every ack survived the crash.
    ASSERT_LE(seen.size(), 6u);
    for (size_t i = 0; i < seen.size(); ++i) {
      EXPECT_EQ(seen[i], static_cast<uint8_t>(i)) << "budget=" << budget;
    }
    if (!failed) {
      EXPECT_EQ(seen.size(), acked) << "budget=" << budget;
    } else {
      EXPECT_GE(seen.size(), acked) << "budget=" << budget;
    }
  }
}

// ---------------------------------------------------------------------------
// Snapshot save durability (the satellite fixes, proven under injection)
// ---------------------------------------------------------------------------

uncertain::Dataset SmallDataset() {
  uncertain::SyntheticOptions opts;
  opts.dim = 2;
  opts.count = 32;
  opts.samples_per_object = 8;
  opts.seed = 99;
  return uncertain::GenerateSynthetic(opts);
}

TEST(SnapshotDurabilityTest, SaveSurvivesMetadataDropBecauseOfDirSync) {
  ScratchDir dir("snap_dirsync");
  FaultInjectionEnv fenv(Env::Default());
  const uncertain::Dataset db = SmallDataset();
  auto builder = pv::PvIndexBuilder::Build(db).value();
  const std::string path = dir.path + "/pv.snap";
  ASSERT_TRUE(builder->Save(path, {}, &fenv).ok());
  // Crash right after Save returned: the snapshot must still be there —
  // Save's parent-directory fsync made the rename durable.
  ASSERT_TRUE(fenv.SimulateCrash().ok());
  ASSERT_TRUE(fenv.FileExists(path));
  auto snap = pv::IndexSnapshot::Open(path);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_EQ(snap.value()->object_count(), db.size());
}

TEST(SnapshotDurabilityTest, RenameWithoutDirSyncIsLostInACrash) {
  // The control experiment for the test above: the exact same write WITHOUT
  // the final directory fsync vanishes — proving the fsync in
  // SnapshotWriter::WriteFile is load-bearing, not ceremony.
  ScratchDir dir("snap_nodirsync");
  FaultInjectionEnv fenv(Env::Default());
  const std::string path = dir.path + "/pv.snap";
  {
    auto f = fenv.NewWritableFile(path + ".tmp", true).value();
    ASSERT_TRUE(f->Append(AsSpan("fully synced bytes")).ok());
    ASSERT_TRUE(f->Sync().ok());
    ASSERT_TRUE(f->Close().ok());
  }
  ASSERT_TRUE(fenv.RenameFile(path + ".tmp", path).ok());
  ASSERT_TRUE(fenv.FileExists(path));
  ASSERT_TRUE(fenv.SimulateCrash().ok());  // no SyncDir happened
  EXPECT_FALSE(fenv.FileExists(path));
}

TEST(SnapshotDurabilityTest, FailedSaveRollsBackAndReportsCause) {
  ScratchDir dir("snap_fail");
  const uncertain::Dataset db = SmallDataset();
  auto builder = pv::PvIndexBuilder::Build(db).value();
  // Sweep an injected failure through every syscall of a save; whatever the
  // failing op, the final path never holds a torn file.
  const std::string path = dir.path + "/pv.snap";
  for (int64_t budget = 0; budget < 8; ++budget) {
    FaultInjectionEnv fenv(Env::Default());
    fenv.SetOpBudget(budget);
    const Status st = builder->Save(path, {}, &fenv);
    fenv.ClearOpBudget();
    if (st.ok()) break;  // the save got through within this budget
    EXPECT_NE(st.message().find("injected fault"), std::string::npos)
        << st.ToString();
    // No torn artifact at the destination: either absent or fully valid.
    if (fenv.FileExists(path)) {
      EXPECT_TRUE(pv::IndexSnapshot::Open(path).ok()) << "budget=" << budget;
    }
  }
}

TEST(SnapshotDurabilityTest, OpenErrorsCarryErrnoDetail) {
  auto missing = storage::SnapshotReader::OpenFile("/no/such/pv.snap");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kIOError);
  EXPECT_NE(missing.status().message().find("No such file or directory"),
            std::string::npos)
      << missing.status().ToString();
}

}  // namespace
}  // namespace pvdb
