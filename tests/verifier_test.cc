// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Probabilistic-verifier tests ([11] Step-2 accelerator): bounds must
// bracket the exact probabilities, threshold answers must match exact
// evaluation for every τ, and the bounds must actually decide most
// candidates (the point of the verifier).

#include <gtest/gtest.h>

#include <set>

#include "src/common/random.h"
#include "src/pv/pnnq.h"
#include "src/pv/verifier.h"
#include "src/uncertain/datagen.h"

namespace pvdb::pv {
namespace {

struct VerifierFixture {
  VerifierFixture(size_t count, uint64_t seed, int samples = 300) {
    uncertain::SyntheticOptions synth;
    synth.dim = 2;
    synth.count = count;
    synth.samples_per_object = samples;
    synth.max_region_extent = 400;  // overlapping candidates
    synth.domain_hi = 1000;
    synth.seed = seed;
    db = std::make_unique<uncertain::Dataset>(
        uncertain::GenerateSynthetic(synth));
  }
  std::unique_ptr<uncertain::Dataset> db;
};

TEST(VerifierTest, BoundsBracketExactProbabilities) {
  VerifierFixture fx(40, /*seed=*/1);
  PnnStep2Evaluator exact(fx.db.get());
  for (int bins : {1, 4, 8, 32}) {
    ProbabilisticVerifier verifier(fx.db.get(), VerifierOptions{bins});
    Rng rng(2);
    for (int q = 0; q < 15; ++q) {
      const geom::Point query{rng.NextUniform(0, 1000),
                              rng.NextUniform(0, 1000)};
      const auto candidates = Step1BruteForce(*fx.db, query);
      const auto bounds = verifier.Bounds(query, candidates);
      const auto exact_results = exact.Evaluate(query, candidates);
      for (const auto& b : bounds) {
        double p = 0.0;  // dropped results have exact probability 0
        for (const auto& r : exact_results) {
          if (r.id == b.id) p = r.probability;
        }
        EXPECT_LE(b.lower, p + 1e-9)
            << "bins=" << bins << " object " << b.id;
        EXPECT_GE(b.upper, p - 1e-9)
            << "bins=" << bins << " object " << b.id;
      }
    }
  }
}

TEST(VerifierTest, MoreBinsTightenBounds) {
  VerifierFixture fx(25, /*seed=*/3);
  const geom::Point query{500, 500};
  const auto candidates = Step1BruteForce(*fx.db, query);
  double prev_gap = std::numeric_limits<double>::infinity();
  for (int bins : {1, 4, 16, 64}) {
    ProbabilisticVerifier verifier(fx.db.get(), VerifierOptions{bins});
    const auto bounds = verifier.Bounds(query, candidates);
    double gap = 0.0;
    for (const auto& b : bounds) gap += b.upper - b.lower;
    EXPECT_LE(gap, prev_gap + 1e-9) << "bins=" << bins;
    prev_gap = gap;
  }
}

TEST(VerifierTest, ThresholdAnswersMatchExact) {
  VerifierFixture fx(35, /*seed=*/4);
  PnnStep2Evaluator exact(fx.db.get());
  ProbabilisticVerifier verifier(fx.db.get());
  Rng rng(5);
  for (double tau : {0.05, 0.2, 0.5, 0.9}) {
    for (int q = 0; q < 10; ++q) {
      const geom::Point query{rng.NextUniform(0, 1000),
                              rng.NextUniform(0, 1000)};
      const auto candidates = Step1BruteForce(*fx.db, query);
      const auto via_verifier =
          verifier.EvaluateThreshold(query, candidates, tau);
      std::set<uncertain::ObjectId> expected;
      for (const auto& r : exact.Evaluate(query, candidates)) {
        if (r.probability >= tau) expected.insert(r.id);
      }
      std::set<uncertain::ObjectId> got;
      for (const auto& r : via_verifier) got.insert(r.id);
      EXPECT_EQ(got, expected) << "tau=" << tau;
    }
  }
}

TEST(VerifierTest, BoundsDecideMostCandidates) {
  VerifierFixture fx(40, /*seed=*/6);
  ProbabilisticVerifier verifier(fx.db.get(),
                                 VerifierOptions{/*bins=*/16});
  Rng rng(7);
  int decided = 0, total = 0;
  for (int q = 0; q < 20; ++q) {
    const geom::Point query{rng.NextUniform(0, 1000),
                            rng.NextUniform(0, 1000)};
    const auto candidates = Step1BruteForce(*fx.db, query);
    VerifierStats stats;
    verifier.EvaluateThreshold(query, candidates, 0.3, &stats);
    decided += stats.accepted_by_bounds + stats.rejected_by_bounds;
    total += static_cast<int>(candidates.size());
  }
  EXPECT_GT(decided * 2, total)
      << "verifier bounds should decide the majority of candidates";
}

TEST(VerifierTest, AcceptedBoundCertifiesThreshold) {
  VerifierFixture fx(30, /*seed=*/8);
  PnnStep2Evaluator exact(fx.db.get());
  ProbabilisticVerifier verifier(fx.db.get());
  const geom::Point query{400, 600};
  const auto candidates = Step1BruteForce(*fx.db, query);
  const double tau = 0.25;
  const auto results = verifier.EvaluateThreshold(query, candidates, tau);
  const auto exact_results = exact.Evaluate(query, candidates);
  for (const auto& r : results) {
    double p = 0.0;
    for (const auto& e : exact_results) {
      if (e.id == r.id) p = e.probability;
    }
    // Reported value never exceeds the true probability (lower bound or
    // exact), and the true probability meets the threshold.
    EXPECT_LE(r.probability, p + 1e-9);
    EXPECT_GE(p, tau - 1e-9);
  }
}

TEST(VerifierTest, SingleCandidateTrivial) {
  VerifierFixture fx(1, /*seed=*/9);
  ProbabilisticVerifier verifier(fx.db.get());
  const auto id = fx.db->objects()[0].id();
  const std::vector<uncertain::ObjectId> candidates{id};
  const auto bounds = verifier.Bounds(geom::Point{1, 1}, candidates);
  ASSERT_EQ(bounds.size(), 1u);
  EXPECT_NEAR(bounds[0].lower, 1.0, 1e-9);
  EXPECT_NEAR(bounds[0].upper, 1.0, 1e-9);
  VerifierStats stats;
  const auto results =
      verifier.EvaluateThreshold(geom::Point{1, 1}, candidates, 0.99, &stats);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(stats.accepted_by_bounds, 1);
  EXPECT_EQ(stats.exact_fallbacks, 0);
}

}  // namespace
}  // namespace pvdb::pv
