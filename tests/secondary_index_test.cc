// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Tests for the secondary index (Section VI-A): record round-trips (UBR,
// uncertainty region, pdf), cheap header reads, in-place UBR updates, and
// removal.

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/pv/secondary_index.h"
#include "src/storage/pager.h"

namespace pvdb::pv {
namespace {

uncertain::UncertainObject MakeObject(uncertain::ObjectId id, int dim,
                                      int samples, Rng* rng) {
  geom::Point c(dim);
  for (int i = 0; i < dim; ++i) c[i] = rng->NextUniform(100, 900);
  geom::Point half(dim);
  for (int i = 0; i < dim; ++i) half[i] = rng->NextUniform(1, 10);
  return uncertain::UncertainObject::UniformSampled(
      id, geom::Rect::FromCenterHalfWidths(c, half), samples, rng);
}

TEST(SecondaryIndexTest, PutGetRoundTrip) {
  storage::InMemoryPager pager;
  auto index = SecondaryIndex::Create(&pager);
  ASSERT_TRUE(index.ok());
  Rng rng(1);
  const auto o = MakeObject(42, 3, 500, &rng);
  const geom::Rect ubr = o.region().Inflated(50.0);
  ASSERT_TRUE(index.value().Put(o, ubr).ok());
  EXPECT_EQ(index.value().Size(), 1u);

  auto header = index.value().GetHeader(42);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header.value().ubr, ubr);
  EXPECT_EQ(header.value().uregion, o.region());

  auto back = index.value().GetObject(42);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().id(), 42u);
  EXPECT_EQ(back.value().region(), o.region());
  ASSERT_EQ(back.value().pdf().size(), 500u);
  EXPECT_EQ(back.value().pdf()[123].position, o.pdf()[123].position);
}

TEST(SecondaryIndexTest, GetUbrIsCheap) {
  storage::InMemoryPager pager;
  auto index = SecondaryIndex::Create(&pager);
  ASSERT_TRUE(index.ok());
  Rng rng(2);
  for (uint64_t i = 0; i < 50; ++i) {
    const auto o = MakeObject(i, 3, 500, &rng);  // multi-page records
    ASSERT_TRUE(index.value().Put(o, o.region().Inflated(20)).ok());
  }
  const int64_t before = pager.metrics().Get(storage::PagerCounters::kReads);
  ASSERT_TRUE(index.value().GetUbr(25).ok());
  const int64_t reads =
      pager.metrics().Get(storage::PagerCounters::kReads) - before;
  EXPECT_LE(reads, 2) << "UBR read = 1 hash-bucket page + 1 record head page";
}

TEST(SecondaryIndexTest, UpdateUbrInPlace) {
  storage::InMemoryPager pager;
  auto index = SecondaryIndex::Create(&pager);
  ASSERT_TRUE(index.ok());
  Rng rng(3);
  const auto o = MakeObject(7, 2, 300, &rng);
  ASSERT_TRUE(index.value().Put(o, o.region()).ok());

  const geom::Rect new_ubr = o.region().Inflated(123.0);
  ASSERT_TRUE(index.value().UpdateUbr(7, new_ubr).ok());
  auto header = index.value().GetHeader(7);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header.value().ubr, new_ubr);
  EXPECT_EQ(header.value().uregion, o.region()) << "region untouched";
  // The pdf must be intact.
  auto back = index.value().GetObject(7);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().pdf().size(), 300u);
  EXPECT_EQ(back.value().pdf()[200].position, o.pdf()[200].position);
}

TEST(SecondaryIndexTest, PutReplacesExistingRecord) {
  storage::InMemoryPager pager;
  auto index = SecondaryIndex::Create(&pager);
  ASSERT_TRUE(index.ok());
  Rng rng(4);
  const auto o1 = MakeObject(5, 2, 100, &rng);
  const auto o2 = MakeObject(5, 2, 200, &rng);
  ASSERT_TRUE(index.value().Put(o1, o1.region()).ok());
  const size_t live_after_first = pager.LivePageCount();
  ASSERT_TRUE(index.value().Put(o2, o2.region()).ok());
  EXPECT_EQ(index.value().Size(), 1u);
  auto back = index.value().GetObject(5);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().pdf().size(), 200u);
  // The first record's chain must have been freed (allowing some slack for
  // the larger second record).
  EXPECT_LE(pager.LivePageCount(), live_after_first + 4);
}

TEST(SecondaryIndexTest, RemoveFreesAndForgets) {
  storage::InMemoryPager pager;
  auto index = SecondaryIndex::Create(&pager);
  ASSERT_TRUE(index.ok());
  Rng rng(5);
  const auto o = MakeObject(9, 3, 400, &rng);
  ASSERT_TRUE(index.value().Put(o, o.region()).ok());
  const size_t live_with_record = pager.LivePageCount();
  ASSERT_TRUE(index.value().Remove(9).ok());
  EXPECT_EQ(index.value().Size(), 0u);
  EXPECT_FALSE(index.value().GetHeader(9).ok());
  EXPECT_LT(pager.LivePageCount(), live_with_record);
}

TEST(SecondaryIndexTest, MissingKeyIsNotFound) {
  storage::InMemoryPager pager;
  auto index = SecondaryIndex::Create(&pager);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index.value().GetHeader(404).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(index.value().Remove(404).code(), StatusCode::kNotFound);
}

TEST(SecondaryIndexTest, ManyObjectsAllDimensions) {
  storage::InMemoryPager pager;
  auto index = SecondaryIndex::Create(&pager);
  ASSERT_TRUE(index.ok());
  Rng rng(6);
  for (int dim = 2; dim <= 5; ++dim) {
    for (uint64_t i = 0; i < 40; ++i) {
      const uint64_t id = static_cast<uint64_t>(dim) * 1000 + i;
      const auto o = MakeObject(id, dim, 50, &rng);
      ASSERT_TRUE(index.value().Put(o, o.region().Inflated(5)).ok());
    }
  }
  EXPECT_EQ(index.value().Size(), 160u);
  for (int dim = 2; dim <= 5; ++dim) {
    for (uint64_t i = 0; i < 40; ++i) {
      const uint64_t id = static_cast<uint64_t>(dim) * 1000 + i;
      auto header = index.value().GetHeader(id);
      ASSERT_TRUE(header.ok());
      EXPECT_EQ(header.value().ubr.dim(), dim);
    }
  }
}

}  // namespace
}  // namespace pvdb::pv
