// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Property tests for the Shrink-and-Expand algorithm (Section V): the
// returned UBR must always contain the true PV-cell (checked against the
// Lemma-4 sampling oracle), must contain u(o) (Lemma 5), should be close to
// the sampled MBR of V(o) when Δ is small, and the warm-started variants
// must satisfy the Lemma-9 monotonicity used by the incremental update.

#include <gtest/gtest.h>

#include <memory>

#include "src/common/random.h"
#include "src/geom/domination.h"
#include "src/pv/cset.h"
#include "src/pv/se.h"
#include "src/uncertain/datagen.h"

namespace pvdb::pv {
namespace {

struct SeFixture {
  SeFixture(int dim, size_t count, uint64_t seed, double extent = 40.0) {
    uncertain::SyntheticOptions options;
    options.dim = dim;
    options.count = count;
    options.samples_per_object = 4;
    options.max_region_extent = extent;
    options.domain_hi = 1000.0;  // smaller domain: denser sampling oracle
    options.seed = seed;
    db = std::make_unique<uncertain::Dataset>(
        uncertain::GenerateSynthetic(options));
    mean_tree = std::make_unique<rtree::RStarTree>(dim);
    for (const auto& o : db->objects()) {
      mean_tree->Insert(geom::Rect::FromPoint(o.MeanPosition()), o.id());
    }
  }

  // Uncertainty regions of everything except `self`.
  std::vector<geom::Rect> OthersOf(uncertain::ObjectId self) const {
    std::vector<geom::Rect> out;
    for (const auto& o : db->objects()) {
      if (o.id() != self) out.push_back(o.region());
    }
    return out;
  }

  std::unique_ptr<uncertain::Dataset> db;
  std::unique_ptr<rtree::RStarTree> mean_tree;
};

// Sampled oracle MBR of V(o): bounding box of grid points where o is a
// possible NN (Lemma 4 predicate). Returns nullopt-like flag via volume 0
// when no point qualifies (cannot happen: u(o) qualifies).
geom::Rect SampledCellMbr(const SeFixture& fx,
                          const uncertain::UncertainObject& o,
                          int grid_per_dim) {
  const std::vector<geom::Rect> others = fx.OthersOf(o.id());
  const geom::Rect& domain = fx.db->domain();
  const int d = domain.dim();
  geom::Point lo(d), hi(d);
  bool any = false;
  std::vector<int> idx(static_cast<size_t>(d), 0);
  const double step = domain.Side(0) / grid_per_dim;
  // Iterate the d-dimensional grid with an odometer.
  for (;;) {
    geom::Point p(d);
    for (int i = 0; i < d; ++i) {
      p[i] = domain.lo(i) + (idx[static_cast<size_t>(i)] + 0.5) * step;
    }
    if (geom::PointPossiblyNearest(o.region(), others, p)) {
      if (!any) {
        lo = hi = p;
        any = true;
      } else {
        for (int i = 0; i < d; ++i) {
          lo[i] = std::min(lo[i], p[i]);
          hi[i] = std::max(hi[i], p[i]);
        }
      }
    }
    int carry = 0;
    while (carry < d && ++idx[static_cast<size_t>(carry)] == grid_per_dim) {
      idx[static_cast<size_t>(carry)] = 0;
      ++carry;
    }
    if (carry == d) break;
  }
  EXPECT_TRUE(any) << "V(o) contains u(o), some grid point must qualify";
  return geom::Rect(lo, hi);
}

// ---------------------------------------------------------------------------
// Conservativeness (the core soundness property)
// ---------------------------------------------------------------------------

class SeConservativenessTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SeConservativenessTest, UbrContainsEveryPossiblyNearestPoint) {
  const int dim = std::get<0>(GetParam());
  const int mmax = std::get<1>(GetParam());
  SeFixture fx(dim, 60, /*seed=*/500 + static_cast<uint64_t>(dim));
  SeOptions options;
  options.delta = 5.0;
  options.max_partitions = mmax;
  SeAlgorithm se(fx.db->domain(), options);
  CSetOptions cset_options;
  cset_options.k_partition = 4;
  cset_options.k_global = 40;

  Rng rng(900);
  for (size_t pick = 0; pick < 8; ++pick) {
    const auto& o = fx.db->objects()[pick * 7];
    const auto cset = ChooseCSet(o, *fx.db, *fx.mean_tree, cset_options);
    const geom::Rect ubr = se.ComputeUbr(o, cset.regions);
    const auto others = fx.OthersOf(o.id());

    // Lemma 5: u(o) ⊆ V(o) ⊆ B(o).
    EXPECT_TRUE(ubr.ContainsRect(o.region()));

    // Every sampled possibly-nearest point must be inside the UBR.
    for (int s = 0; s < 4000; ++s) {
      geom::Point p(dim);
      for (int i = 0; i < dim; ++i) {
        p[i] = rng.NextUniform(fx.db->domain().lo(i), fx.db->domain().hi(i));
      }
      if (geom::PointPossiblyNearest(o.region(), others, p)) {
        EXPECT_TRUE(ubr.Contains(p))
            << "possibly-nearest point " << p.ToString()
            << " escaped UBR " << ubr.ToString();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    DimsAndBudgets, SeConservativenessTest,
    ::testing::Combine(::testing::Values(2, 3, 4),
                       ::testing::Values(2, 10, 40)));

// ---------------------------------------------------------------------------
// Tightness
// ---------------------------------------------------------------------------

TEST(SeTest, UbrCloseToSampledMbrWithAllCSet2D) {
  SeFixture fx(2, 40, /*seed=*/31);
  SeOptions options;
  options.delta = 1.0;
  options.max_partitions = 40;
  SeAlgorithm se(fx.db->domain(), options);

  for (size_t pick = 0; pick < 6; ++pick) {
    const auto& o = fx.db->objects()[pick * 5];
    const auto others = fx.OthersOf(o.id());
    const geom::Rect ubr = se.ComputeUbr(o, others);  // Cset = S (Lemma 4)
    const geom::Rect sampled = SampledCellMbr(fx, o, /*grid_per_dim=*/200);
    // Conservative: UBR contains the sampled MBR.
    EXPECT_TRUE(ubr.Inflated(1e-9).ContainsRect(sampled));
    // Tight: each face within Δ + grid resolution + partition-budget slack.
    const double grid_step = fx.db->domain().Side(0) / 200.0;
    const double slack = options.delta + 4 * grid_step + 25.0;
    for (int i = 0; i < 2; ++i) {
      EXPECT_LE(sampled.lo(i) - ubr.lo(i), slack);
      EXPECT_LE(ubr.hi(i) - sampled.hi(i), slack);
    }
  }
}

TEST(SeTest, SmallerDeltaNeverLoosensUbr) {
  SeFixture fx(3, 80, /*seed=*/77);
  CSetOptions cset_options;
  const auto& o = fx.db->objects()[11];
  const auto cset = ChooseCSet(o, *fx.db, *fx.mean_tree, cset_options);
  double prev_volume = std::numeric_limits<double>::infinity();
  for (double delta : {200.0, 50.0, 10.0, 1.0}) {
    SeOptions options;
    options.delta = delta;
    options.max_partitions = 20;
    SeAlgorithm se(fx.db->domain(), options);
    const geom::Rect ubr = se.ComputeUbr(o, cset.regions);
    // Volumes shrink (or stay) as Δ decreases: more halving rounds only
    // remove proven-empty slabs.
    EXPECT_LE(ubr.Volume(), prev_volume * (1 + 1e-12));
    prev_volume = ubr.Volume();
  }
}

TEST(SeTest, LargerPartitionBudgetNeverLoosensUbr) {
  SeFixture fx(3, 80, /*seed=*/78);
  CSetOptions cset_options;
  const auto& o = fx.db->objects()[23];
  const auto cset = ChooseCSet(o, *fx.db, *fx.mean_tree, cset_options);
  double prev_volume = std::numeric_limits<double>::infinity();
  for (int mmax : {2, 5, 10, 40}) {
    SeOptions options;
    options.delta = 2.0;
    options.max_partitions = mmax;
    SeAlgorithm se(fx.db->domain(), options);
    const geom::Rect ubr = se.ComputeUbr(o, cset.regions);
    EXPECT_LE(ubr.Volume(), prev_volume * (1 + 1e-12));
    prev_volume = ubr.Volume();
  }
}

// ---------------------------------------------------------------------------
// Iteration bound and edge cases
// ---------------------------------------------------------------------------

TEST(SeTest, SlabTestCountWithinAnalyticalBound) {
  SeFixture fx(3, 100, /*seed=*/79);
  SeOptions options;
  options.delta = 1.0;
  options.max_partitions = 10;
  SeAlgorithm se(fx.db->domain(), options);
  CSetOptions cset_options;
  const auto& o = fx.db->objects()[42];
  const auto cset = ChooseCSet(o, *fx.db, *fx.mean_tree, cset_options);
  SeStats stats;
  se.ComputeUbr(o, cset.regions, &stats);
  // Section V: at most 2d · log2(|D|_max / Δ) slab tests (+2d rounding).
  const double bound =
      2.0 * 3 * (std::log2(fx.db->domain().MaxSide() / options.delta) + 1);
  EXPECT_LE(stats.slab_tests, static_cast<int>(bound));
  EXPECT_EQ(stats.slab_tests, stats.shrinks + stats.expands);
  EXPECT_GT(stats.shrinks, 0) << "a 100-object db must shrink somewhere";
}

TEST(SeTest, EmptyCsetReturnsDomain) {
  const geom::Rect domain = geom::Rect::Cube(2, 0, 1000);
  SeAlgorithm se(domain, SeOptions{});
  Rng rng(1);
  const auto o = uncertain::UncertainObject::UniformSampled(
      0, geom::Rect::Cube(2, 500, 510), 3, &rng);
  EXPECT_EQ(se.ComputeUbr(o, {}), domain);
}

TEST(SeTest, SingleFarCandidateHalvesDomain) {
  // o near the left edge, candidate near the right: B(o) must exclude the
  // region around the candidate but keep everything on o's side.
  const geom::Rect domain = geom::Rect::Cube(2, 0, 1000);
  SeOptions options;
  options.delta = 1.0;
  options.max_partitions = 10;
  SeAlgorithm se(domain, options);
  Rng rng(2);
  const auto o = uncertain::UncertainObject::UniformSampled(
      0, geom::Rect(geom::Point{100, 495}, geom::Point{110, 505}), 3, &rng);
  const std::vector<geom::Rect> cset{
      geom::Rect(geom::Point{900, 495}, geom::Point{910, 505})};
  const geom::Rect ubr = se.ComputeUbr(o, cset);
  // The bisector along x sits near (110+900)/2 = 505 at y = 500; with
  // maxdist-vs-mindist semantics it bulges, but 900 must be excluded and
  // 400 must remain inside.
  EXPECT_LT(ubr.hi(0), 900.0);
  EXPECT_GT(ubr.hi(0), 400.0);
  EXPECT_EQ(ubr.lo(0), 0.0) << "nothing bounds o from the left";
  EXPECT_EQ(ubr.lo(1), 0.0);
  EXPECT_EQ(ubr.hi(1), 1000.0);
}

// ---------------------------------------------------------------------------
// Warm starts (Section VI-B, Lemma 9)
// ---------------------------------------------------------------------------

TEST(SeTest, WarmDeletionGrowsFromOldUbrAndStaysSound) {
  SeFixture fx(2, 50, /*seed=*/90);
  SeOptions options;
  options.delta = 2.0;
  options.max_partitions = 20;
  SeAlgorithm se(fx.db->domain(), options);

  const auto& o = fx.db->objects()[7];
  const auto all_before = fx.OthersOf(o.id());
  const geom::Rect old_ubr = se.ComputeUbr(o, all_before);

  // Delete one other object (the nearest — most likely to matter).
  uncertain::ObjectId victim = uncertain::kInvalidObjectId;
  double best = std::numeric_limits<double>::infinity();
  for (const auto& other : fx.db->objects()) {
    if (other.id() == o.id()) continue;
    const double d = other.MeanPosition().DistanceTo(o.MeanPosition());
    if (d < best) {
      best = d;
      victim = other.id();
    }
  }
  ASSERT_TRUE(fx.db->Remove(victim).ok());
  const auto all_after = fx.OthersOf(o.id());

  const geom::Rect new_ubr = se.ComputeUbrAfterDeletion(o, old_ubr, all_after);
  // Lemma 9 (deletion): the cell can only grow; warm start keeps old ⊆ new.
  EXPECT_TRUE(new_ubr.ContainsRect(old_ubr));

  // Soundness against the post-deletion oracle.
  Rng rng(91);
  for (int s = 0; s < 3000; ++s) {
    geom::Point p(2);
    for (int i = 0; i < 2; ++i) {
      p[i] = rng.NextUniform(fx.db->domain().lo(i), fx.db->domain().hi(i));
    }
    if (geom::PointPossiblyNearest(o.region(), all_after, p)) {
      EXPECT_TRUE(new_ubr.Contains(p));
    }
  }
}

TEST(SeTest, WarmInsertionShrinksWithinOldUbrAndStaysSound) {
  SeFixture fx(2, 50, /*seed=*/92);
  SeOptions options;
  options.delta = 2.0;
  options.max_partitions = 20;
  SeAlgorithm se(fx.db->domain(), options);

  const auto& o = fx.db->objects()[9];
  const auto all_before = fx.OthersOf(o.id());
  const geom::Rect old_ubr = se.ComputeUbr(o, all_before);

  // Insert a new object near o (but not overlapping).
  Rng rng(93);
  geom::Point c = o.MeanPosition();
  c[0] = std::min(c[0] + 120.0, fx.db->domain().hi(0) - 10);
  const auto inserted = uncertain::UncertainObject::UniformSampled(
      99999, geom::Rect::FromCenterHalfWidths(c, geom::Point{5, 5}), 3, &rng);
  ASSERT_TRUE(fx.db->Add(inserted).ok());
  const auto all_after = fx.OthersOf(o.id());

  const geom::Rect new_ubr =
      se.ComputeUbrAfterInsertion(o, old_ubr, all_after);
  // Lemma 9 (insertion): the cell can only shrink; h starts from old UBR.
  EXPECT_TRUE(old_ubr.ContainsRect(new_ubr));

  for (int s = 0; s < 3000; ++s) {
    geom::Point p(2);
    for (int i = 0; i < 2; ++i) {
      p[i] = rng.NextUniform(fx.db->domain().lo(i), fx.db->domain().hi(i));
    }
    if (geom::PointPossiblyNearest(o.region(), all_after, p)) {
      EXPECT_TRUE(new_ubr.Contains(p));
    }
  }
}

TEST(SeTest, AnySubsetCsetIsSound) {
  // Lemma 7: every non-empty subset is a valid C-set — the UBR stays
  // conservative no matter how bad the subset is.
  SeFixture fx(2, 60, /*seed=*/94);
  SeOptions options;
  options.delta = 5.0;
  options.max_partitions = 10;
  SeAlgorithm se(fx.db->domain(), options);
  const auto& o = fx.db->objects()[3];
  const auto others = fx.OthersOf(o.id());

  Rng rng(95);
  for (int trial = 0; trial < 5; ++trial) {
    // Random subset of ~20%.
    std::vector<geom::Rect> subset;
    for (const auto& r : others) {
      if (rng.NextBool(0.2)) subset.push_back(r);
    }
    const geom::Rect ubr = se.ComputeUbr(o, subset);
    for (int s = 0; s < 1500; ++s) {
      geom::Point p(2);
      for (int i = 0; i < 2; ++i) {
        p[i] = rng.NextUniform(fx.db->domain().lo(i), fx.db->domain().hi(i));
      }
      if (geom::PointPossiblyNearest(o.region(), others, p)) {
        EXPECT_TRUE(ubr.Contains(p));
      }
    }
  }
}

}  // namespace
}  // namespace pvdb::pv
