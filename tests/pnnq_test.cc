// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// PNNQ Step-2 tests (the method of [8] on the discrete model): probability
// axioms (sum to one, membership in [0,1]), agreement with an independent
// possible-worlds Monte-Carlo estimator, symmetry, and the Step-1 oracle.

#include <gtest/gtest.h>

#include <numeric>

#include "src/common/random.h"
#include "src/pv/pnnq.h"
#include "src/uncertain/datagen.h"

namespace pvdb::pv {
namespace {

TEST(Step1BruteForceTest, MinMaxSemantics) {
  Rng rng(1);
  uncertain::Dataset db(geom::Rect::Cube(2, 0, 1000));
  // a: near the query; b: clearly farther than a's farthest corner;
  // c: overlapping a's distance range.
  ASSERT_TRUE(db.Add(uncertain::UncertainObject::UniformSampled(
                        0, geom::Rect(geom::Point{10, 10}, geom::Point{20, 20}),
                        5, &rng))
                  .ok());
  ASSERT_TRUE(db.Add(uncertain::UncertainObject::UniformSampled(
                        1, geom::Rect(geom::Point{500, 500},
                                      geom::Point{510, 510}),
                        5, &rng))
                  .ok());
  ASSERT_TRUE(db.Add(uncertain::UncertainObject::UniformSampled(
                        2, geom::Rect(geom::Point{15, 15}, geom::Point{40, 40}),
                        5, &rng))
                  .ok());
  const auto out = Step1BruteForce(db, geom::Point{0, 0});
  EXPECT_EQ(out, (std::vector<uncertain::ObjectId>{0, 2}));
}

TEST(Step1BruteForceTest, EmptyDatabase) {
  uncertain::Dataset db(geom::Rect::Cube(2, 0, 1000));
  EXPECT_TRUE(Step1BruteForce(db, geom::Point{1, 1}).empty());
}

struct Step2Fixture {
  Step2Fixture(int dim, size_t count, uint64_t seed, int samples = 200) {
    uncertain::SyntheticOptions synth;
    synth.dim = dim;
    synth.count = count;
    synth.samples_per_object = samples;
    synth.max_region_extent = 400;  // big regions: overlapping candidates
    synth.domain_hi = 1000;
    synth.seed = seed;
    db = std::make_unique<uncertain::Dataset>(
        uncertain::GenerateSynthetic(synth));
  }
  std::unique_ptr<uncertain::Dataset> db;
};

TEST(PnnStep2Test, ProbabilitiesAreADistributionOverCandidates) {
  Step2Fixture fx(2, 40, /*seed=*/5);
  PnnStep2Evaluator step2(fx.db.get());
  Rng rng(6);
  for (int q = 0; q < 25; ++q) {
    const geom::Point query{rng.NextUniform(0, 1000), rng.NextUniform(0, 1000)};
    const auto candidates = Step1BruteForce(*fx.db, query);
    ASSERT_FALSE(candidates.empty());
    const auto results = step2.Evaluate(query, candidates);
    double total = 0;
    for (const auto& r : results) {
      EXPECT_GT(r.probability, 0.0);
      EXPECT_LE(r.probability, 1.0 + 1e-9);
      total += r.probability;
    }
    EXPECT_NEAR(total, 1.0, 1e-6)
        << "qualification probabilities must sum to one";
  }
}

TEST(PnnStep2Test, ResultsSortedByProbability) {
  Step2Fixture fx(2, 30, /*seed=*/7);
  PnnStep2Evaluator step2(fx.db.get());
  const geom::Point query{500, 500};
  const auto results =
      step2.Evaluate(query, Step1BruteForce(*fx.db, query));
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_GE(results[i - 1].probability, results[i].probability);
  }
}

TEST(PnnStep2Test, SingletonCandidateHasProbabilityOne) {
  Rng rng(8);
  uncertain::Dataset db(geom::Rect::Cube(2, 0, 1000));
  ASSERT_TRUE(db.Add(uncertain::UncertainObject::UniformSampled(
                        3, geom::Rect::Cube(2, 100, 110), 50, &rng))
                  .ok());
  PnnStep2Evaluator step2(&db);
  const std::vector<uncertain::ObjectId> cands{3};
  const auto results = step2.Evaluate(geom::Point{0, 0}, cands);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_DOUBLE_EQ(results[0].probability, 1.0);
}

TEST(PnnStep2Test, SymmetricTwinsSplitEvenly) {
  // Two objects whose regions are mirror images w.r.t. the query: each must
  // win about half the probability mass.
  Rng rng(9);
  uncertain::Dataset db(geom::Rect::Cube(1, 0, 1000));
  ASSERT_TRUE(db.Add(uncertain::UncertainObject::UniformSampled(
                        0, geom::Rect(geom::Point{100}, geom::Point{200}),
                        2000, &rng))
                  .ok());
  ASSERT_TRUE(db.Add(uncertain::UncertainObject::UniformSampled(
                        1, geom::Rect(geom::Point{800}, geom::Point{900}),
                        2000, &rng))
                  .ok());
  PnnStep2Evaluator step2(&db);
  const std::vector<uncertain::ObjectId> cands{0, 1};
  const auto results = step2.Evaluate(geom::Point{500}, cands);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_NEAR(results[0].probability, 0.5, 0.05);
  EXPECT_NEAR(results[1].probability, 0.5, 0.05);
}

TEST(PnnStep2Test, DominatedCandidateGetsZeroAndIsDropped) {
  Rng rng(10);
  uncertain::Dataset db(geom::Rect::Cube(2, 0, 1000));
  // Object 0 strictly dominates object 1 w.r.t. the query at the origin.
  ASSERT_TRUE(db.Add(uncertain::UncertainObject::UniformSampled(
                        0, geom::Rect::Cube(2, 10, 20), 100, &rng))
                  .ok());
  ASSERT_TRUE(db.Add(uncertain::UncertainObject::UniformSampled(
                        1, geom::Rect::Cube(2, 500, 510), 100, &rng))
                  .ok());
  PnnStep2Evaluator step2(&db);
  const std::vector<uncertain::ObjectId> cands{0, 1};
  const auto results = step2.Evaluate(geom::Point{0, 0}, cands);
  ASSERT_EQ(results.size(), 1u) << "zero-probability answers are dropped";
  EXPECT_EQ(results[0].id, 0u);
  EXPECT_DOUBLE_EQ(results[0].probability, 1.0);
}

TEST(PnnStep2Test, MatchesMonteCarloEstimator) {
  Step2Fixture fx(2, 12, /*seed=*/11, /*samples=*/300);
  PnnStep2Evaluator step2(fx.db.get());
  Rng rng(12);
  for (int q = 0; q < 8; ++q) {
    const geom::Point query{rng.NextUniform(200, 800),
                            rng.NextUniform(200, 800)};
    const auto candidates = Step1BruteForce(*fx.db, query);
    const auto exact = step2.Evaluate(query, candidates);
    const auto mc = step2.EstimateByMonteCarlo(query, candidates,
                                               /*trials=*/20000, /*seed=*/q);
    for (const auto& e : exact) {
      double mc_p = 0;
      for (const auto& m : mc) {
        if (m.id == e.id) mc_p = m.probability;
      }
      EXPECT_NEAR(e.probability, mc_p, 0.02)
          << "object " << e.id << " at query " << query.ToString();
    }
  }
}

TEST(PnnStep2Test, ChargesPdfPages) {
  Step2Fixture fx(3, 10, /*seed=*/13, /*samples=*/500);
  PnnStep2Evaluator step2(fx.db.get());
  MetricRegistry io;
  const geom::Point query{500, 500, 500};
  const auto candidates = Step1BruteForce(*fx.db, query);
  step2.Evaluate(query, candidates, &io);
  // A 500-sample 3D record spans ≥ 4 pages; total charge scales with the
  // candidate count.
  EXPECT_GE(io.Get(PnnCounters::kPdfPagesRead),
            static_cast<int64_t>(4 * candidates.size()));
}

TEST(PnnStep2Test, WeightedPdfsHandledExactly) {
  // Hand-built non-uniform pdfs: o0 is near the query with mass 0.9 at
  // distance 1 and 0.1 at distance 10; o1 has mass 0.5 at distance 5 and
  // 0.5 at distance 20. P(o0 NN) = 0.9·1 + 0.1·P(d1 > 10) = 0.9 + 0.1·0.5.
  uncertain::Dataset db(geom::Rect::Cube(1, 0, 100));
  const geom::Point q{0};
  ASSERT_TRUE(
      db.Add(uncertain::UncertainObject(
                 0, geom::Rect(geom::Point{1}, geom::Point{10}),
                 {uncertain::Instance{geom::Point{1}, 0.9},
                  uncertain::Instance{geom::Point{10}, 0.1}}))
          .ok());
  ASSERT_TRUE(
      db.Add(uncertain::UncertainObject(
                 1, geom::Rect(geom::Point{5}, geom::Point{20}),
                 {uncertain::Instance{geom::Point{5}, 0.5},
                  uncertain::Instance{geom::Point{20}, 0.5}}))
          .ok());
  PnnStep2Evaluator step2(&db);
  const std::vector<uncertain::ObjectId> cands{0, 1};
  const auto results = step2.Evaluate(q, cands);
  ASSERT_EQ(results.size(), 2u);
  double p0 = 0, p1 = 0;
  for (const auto& r : results) (r.id == 0 ? p0 : p1) = r.probability;
  EXPECT_DOUBLE_EQ(p0, 0.9 + 0.1 * 0.5);  // = 0.95
  EXPECT_DOUBLE_EQ(p1, 0.5 * 0.1);        // 5 beats only o0's far sample
  EXPECT_DOUBLE_EQ(p0 + p1, 1.0);
}

TEST(PnnStep2Test, MinProbabilityFilters) {
  Step2Fixture fx(2, 30, /*seed=*/14);
  PnnStep2Evaluator step2(fx.db.get());
  const geom::Point query{500, 500};
  const auto candidates = Step1BruteForce(*fx.db, query);
  const auto all = step2.Evaluate(query, candidates);
  const auto filtered = step2.Evaluate(query, candidates, nullptr, 0.2);
  EXPECT_LE(filtered.size(), all.size());
  for (const auto& r : filtered) EXPECT_GT(r.probability, 0.2);
}

}  // namespace
}  // namespace pvdb::pv
