// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Tests for the uncertain data model and the data generators: pdf
// construction, serialization round-trips, dataset bookkeeping, and the
// statistical/shape properties of the synthetic and real-simulacrum
// generators (Section VII-A parameterization).

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/uncertain/datagen.h"
#include "src/uncertain/dataset.h"
#include "src/uncertain/uncertain_object.h"

namespace pvdb::uncertain {
namespace {

// ---------------------------------------------------------------------------
// UncertainObject
// ---------------------------------------------------------------------------

TEST(UncertainObjectTest, UniformSampledStaysInRegionAndNormalizes) {
  Rng rng(1);
  const geom::Rect region(geom::Point{10, 20}, geom::Point{14, 26});
  const auto o = UncertainObject::UniformSampled(7, region, 500, &rng);
  EXPECT_EQ(o.id(), 7u);
  EXPECT_EQ(o.dim(), 2);
  EXPECT_EQ(o.pdf().size(), 500u);
  double total = 0;
  for (const auto& inst : o.pdf()) {
    EXPECT_TRUE(region.Contains(inst.position));
    total += inst.probability;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(UncertainObjectTest, GaussianSampledTruncatedToRegion) {
  Rng rng(2);
  const geom::Point center{50, 50, 50};
  const geom::Rect region =
      geom::Rect::FromCenterHalfWidths(center, geom::Point{5, 5, 5});
  const auto o = UncertainObject::GaussianSampled(9, center, 2.0, region, 400,
                                                  &rng);
  double total = 0;
  geom::Point mean(3);
  for (const auto& inst : o.pdf()) {
    EXPECT_TRUE(region.Contains(inst.position));
    total += inst.probability;
    for (int i = 0; i < 3; ++i) mean[i] += inst.position[i] / 400.0;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Sample mean close to the Gaussian center.
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(mean[i], 50.0, 0.5);
}

TEST(UncertainObjectTest, MeanPositionIsRegionCenter) {
  Rng rng(3);
  const geom::Rect region(geom::Point{0, 0}, geom::Point{4, 8});
  const auto o = UncertainObject::UniformSampled(1, region, 10, &rng);
  EXPECT_EQ(o.MeanPosition(), (geom::Point{2, 4}));
}

TEST(UncertainObjectTest, SerializationRoundTrip) {
  Rng rng(4);
  for (int dim = 2; dim <= 5; ++dim) {
    const geom::Rect region = geom::Rect::Cube(dim, 10, 20);
    const auto o = UncertainObject::UniformSampled(123, region, 50, &rng);
    std::vector<uint8_t> bytes;
    o.AppendTo(&bytes);
    size_t offset = 0;
    auto back = UncertainObject::ParseFrom(bytes, &offset);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(offset, bytes.size());
    EXPECT_EQ(back.value().id(), o.id());
    EXPECT_EQ(back.value().region(), o.region());
    ASSERT_EQ(back.value().pdf().size(), o.pdf().size());
    for (size_t i = 0; i < o.pdf().size(); ++i) {
      EXPECT_EQ(back.value().pdf()[i].position, o.pdf()[i].position);
      EXPECT_EQ(back.value().pdf()[i].probability, o.pdf()[i].probability);
    }
  }
}

TEST(UncertainObjectTest, ParseRejectsTruncation) {
  Rng rng(5);
  const auto o = UncertainObject::UniformSampled(
      1, geom::Rect::Cube(3, 0, 1), 10, &rng);
  std::vector<uint8_t> bytes;
  o.AppendTo(&bytes);
  bytes.resize(bytes.size() / 2);
  size_t offset = 0;
  EXPECT_FALSE(UncertainObject::ParseFrom(bytes, &offset).ok());
}

// ---------------------------------------------------------------------------
// Dataset
// ---------------------------------------------------------------------------

TEST(DatasetTest, AddFindRemove) {
  Rng rng(6);
  Dataset db(geom::Rect::Cube(2, 0, 100));
  ASSERT_TRUE(db.Add(UncertainObject::UniformSampled(
                        1, geom::Rect::Cube(2, 10, 12), 5, &rng))
                  .ok());
  ASSERT_TRUE(db.Add(UncertainObject::UniformSampled(
                        2, geom::Rect::Cube(2, 20, 22), 5, &rng))
                  .ok());
  EXPECT_EQ(db.size(), 2u);
  ASSERT_NE(db.Find(1), nullptr);
  EXPECT_EQ(db.Find(1)->id(), 1u);
  EXPECT_EQ(db.Find(3), nullptr);
  ASSERT_TRUE(db.Remove(1).ok());
  EXPECT_EQ(db.Find(1), nullptr);
  EXPECT_EQ(db.size(), 1u);
  EXPECT_FALSE(db.Remove(1).ok());
}

TEST(DatasetTest, RejectsDuplicatesAndEscapees) {
  Rng rng(7);
  Dataset db(geom::Rect::Cube(2, 0, 100));
  ASSERT_TRUE(db.Add(UncertainObject::UniformSampled(
                        1, geom::Rect::Cube(2, 10, 12), 5, &rng))
                  .ok());
  EXPECT_EQ(db.Add(UncertainObject::UniformSampled(
                      1, geom::Rect::Cube(2, 20, 22), 5, &rng))
                .code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(db.Add(UncertainObject::UniformSampled(
                      9, geom::Rect::Cube(2, 90, 120), 5, &rng))
                .code(),
            StatusCode::kInvalidArgument);
  // Dimension mismatch.
  EXPECT_EQ(db.Add(UncertainObject::UniformSampled(
                      10, geom::Rect::Cube(3, 10, 12), 5, &rng))
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(DatasetTest, SwapRemoveKeepsIndexConsistent) {
  Rng rng(8);
  Dataset db(geom::Rect::Cube(2, 0, 1000));
  for (uint64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        db.Add(UncertainObject::UniformSampled(
                  i, geom::Rect::Cube(2, 10.0 * i, 10.0 * i + 5), 3, &rng))
            .ok());
  }
  // Remove every third object and verify the rest are still findable.
  for (uint64_t i = 0; i < 50; i += 3) ASSERT_TRUE(db.Remove(i).ok());
  for (uint64_t i = 0; i < 50; ++i) {
    if (i % 3 == 0) {
      EXPECT_EQ(db.Find(i), nullptr);
    } else {
      ASSERT_NE(db.Find(i), nullptr);
      EXPECT_EQ(db.Find(i)->id(), i);
    }
  }
}

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

TEST(DatagenTest, SyntheticMatchesParameterization) {
  SyntheticOptions options;
  options.dim = 3;
  options.count = 500;
  options.max_region_extent = 40;
  options.samples_per_object = 20;
  options.seed = 99;
  const Dataset db = GenerateSynthetic(options);
  EXPECT_EQ(db.size(), 500u);
  EXPECT_EQ(db.dim(), 3);
  EXPECT_EQ(db.domain(), geom::Rect::Cube(3, 0, 10000));
  for (const auto& o : db.objects()) {
    EXPECT_TRUE(db.domain().ContainsRect(o.region()));
    EXPECT_EQ(o.pdf().size(), 20u);
    for (int i = 0; i < 3; ++i) {
      EXPECT_LE(o.region().Side(i), 40.0 + 1e-9);
    }
  }
}

TEST(DatagenTest, SyntheticIsDeterministicPerSeed) {
  SyntheticOptions options;
  options.count = 50;
  options.samples_per_object = 5;
  const Dataset a = GenerateSynthetic(options);
  const Dataset b = GenerateSynthetic(options);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.objects()[i].region(), b.objects()[i].region());
  }
  options.seed += 1;
  const Dataset c = GenerateSynthetic(options);
  int same = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    same += a.objects()[i].region() == c.objects()[i].region();
  }
  EXPECT_LT(same, 5);
}

TEST(DatagenTest, RealSimulacraCardinalitiesAndDims) {
  RealDataOptions options;
  options.scale = 0.01;
  options.samples_per_object = 10;
  const Dataset roads = GenerateRealLike(RealDataset::kRoads, options);
  EXPECT_EQ(roads.dim(), 2);
  EXPECT_NEAR(static_cast<double>(roads.size()), 300.0, 16.0);
  const Dataset rrlines = GenerateRealLike(RealDataset::kRRLines, options);
  EXPECT_EQ(rrlines.dim(), 2);
  EXPECT_NEAR(static_cast<double>(rrlines.size()), 360.0, 16.0);
  const Dataset airports = GenerateRealLike(RealDataset::kAirports, options);
  EXPECT_EQ(airports.dim(), 3);
  EXPECT_EQ(airports.size(), 200u);
}

TEST(DatagenTest, RoadsAreSpatiallySkewed) {
  // Clustered data: the variance of object counts over a coarse grid must
  // clearly exceed a uniform layout's (index of dispersion >> 1).
  RealDataOptions options;
  options.scale = 0.05;
  options.samples_per_object = 5;
  const Dataset roads = GenerateRealLike(RealDataset::kRoads, options);
  constexpr int kGrid = 8;
  double counts[kGrid][kGrid] = {};
  for (const auto& o : roads.objects()) {
    const auto c = o.MeanPosition();
    const int gx = std::min(kGrid - 1, static_cast<int>(c[0] / (10000.0 / kGrid)));
    const int gy = std::min(kGrid - 1, static_cast<int>(c[1] / (10000.0 / kGrid)));
    counts[gx][gy] += 1;
  }
  const double mean = static_cast<double>(roads.size()) / (kGrid * kGrid);
  double var = 0;
  for (auto& row : counts) {
    for (double c : row) var += (c - mean) * (c - mean);
  }
  var /= kGrid * kGrid;
  EXPECT_GT(var / mean, 3.0) << "roads simulacrum should be clustered";
}

TEST(DatagenTest, AirportsRegionsAreGpsSpheresMbrs) {
  RealDataOptions options;
  options.scale = 0.01;
  options.samples_per_object = 5;
  const Dataset airports = GenerateRealLike(RealDataset::kAirports, options);
  for (const auto& o : airports.objects()) {
    for (int i = 0; i < 3; ++i) {
      EXPECT_NEAR(o.region().Side(i), 10.0, 1e-9)
          << "10m-radius GPS sphere MBR";
    }
  }
}

}  // namespace
}  // namespace pvdb::uncertain
