// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Unit tests for the common substrate: Status/Result, Rng, Summary,
// MetricRegistry, StopWatch.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/common/random.h"
#include "src/common/stats.h"
#include "src/common/status.h"
#include "src/common/timer.h"

namespace pvdb {
namespace {

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("object 42");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "object 42");
  EXPECT_EQ(s.ToString(), "NotFound: object 42");
}

TEST(StatusTest, AllFactoryCodesDistinct) {
  std::set<StatusCode> codes{
      Status::InvalidArgument("x").code(), Status::NotFound("x").code(),
      Status::AlreadyExists("x").code(),   Status::OutOfRange("x").code(),
      Status::ResourceExhausted("x").code(), Status::IOError("x").code(),
      Status::Corruption("x").code(),      Status::NotSupported("x").code(),
      Status::Internal("x").code()};
  EXPECT_EQ(codes.size(), 9u);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::IOError("a"), Status::IOError("a"));
  EXPECT_FALSE(Status::IOError("a") == Status::IOError("b"));
  EXPECT_FALSE(Status::IOError("a") == Status::Corruption("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

namespace {

Result<int> FailingOp() { return Status::IOError("disk"); }

Result<int> Chained() {
  PVDB_ASSIGN_OR_RETURN(int x, FailingOp());
  return x + 1;
}

Status PropagatingOp() {
  PVDB_RETURN_NOT_OK(Status::Corruption("bits"));
  return Status::OK();
}

}  // namespace

TEST(ResultTest, AssignOrReturnPropagates) {
  Result<int> r = Chained();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST(StatusTest, ReturnNotOkPropagates) {
  EXPECT_EQ(PropagatingOp().code(), StatusCode::kCorruption);
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.NextU64() == b.NextU64();
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextUniform(-5.0, 11.5);
    EXPECT_GE(x, -5.0);
    EXPECT_LT(x, 11.5);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(9);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, GaussianMomentsMatch) {
  Rng rng(10);
  double sum = 0, sum_sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int x = rng.NextInt(3, 7);
    EXPECT_GE(x, 3);
    EXPECT_LE(x, 7);
    saw_lo |= x == 3;
    saw_hi |= x == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BoundedStaysBelowBound) {
  Rng rng(12);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.NextBounded(17), 17u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(13);
  Rng b = a.Fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.NextU64() == b.NextU64();
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(14);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

// ---------------------------------------------------------------------------
// Summary / MetricRegistry
// ---------------------------------------------------------------------------

TEST(SummaryTest, BasicStatistics) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(SummaryTest, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(SummaryTest, MergeMatchesCombinedStream) {
  Summary a, b, all;
  for (int i = 0; i < 50; ++i) {
    a.Add(i);
    all.Add(i);
  }
  for (int i = 50; i < 120; ++i) {
    b.Add(i * 0.5);
    all.Add(i * 0.5);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.mean(), all.mean());
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(SummaryTest, VarianceResistsCatastrophicCancellation) {
  // Large offset, tiny spread: a sum-of-squares accumulator computes
  // E[x²] - E[x]² ≈ 1e18 - 1e18 and loses every significant digit (the
  // classic failure this regression guards against). Welford's recurrence
  // stays on the scale of the variance itself.
  Summary s;
  for (double x : {1e9, 1e9 + 1.0, 1e9 + 2.0}) s.Add(x);
  EXPECT_NEAR(s.stddev(), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(s.mean(), 1e9 + 1.0);

  // The same property must survive Chan's merge path.
  Summary a, b;
  for (int i = 0; i < 500; ++i) a.Add(1e9 + (i % 2));
  for (int i = 0; i < 500; ++i) b.Add(1e9 + (i % 2));
  a.Merge(b);
  // 1000 samples alternating 1e9 and 1e9+1: variance = 0.25 * n/(n-1).
  const double expected = std::sqrt(0.25 * 1000.0 / 999.0);
  EXPECT_NEAR(a.stddev(), expected, 1e-9);
}

TEST(MetricRegistryTest, IncrementAndSnapshot) {
  MetricRegistry m;
  EXPECT_EQ(m.Get("x"), 0);
  m.Increment("x");
  m.Increment("x", 4);
  m.Increment("y", 2);
  EXPECT_EQ(m.Get("x"), 5);
  EXPECT_EQ(m.Get("y"), 2);
  auto snap = m.Snapshot();
  EXPECT_EQ(snap.size(), 2u);
  m.Reset();
  EXPECT_EQ(m.Get("x"), 0);
}

// ---------------------------------------------------------------------------
// StopWatch
// ---------------------------------------------------------------------------

TEST(StopWatchTest, MeasuresElapsedTime) {
  StopWatch w;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GT(w.ElapsedNanos(), 0);
  EXPECT_GE(w.ElapsedMillis(), 0.0);
}

TEST(StopWatchTest, ScopedTimerAccumulates) {
  double bucket = 0.0;
  {
    ScopedTimerMs t(&bucket);
    volatile double sink = 0;
    for (int i = 0; i < 100000; ++i) sink += i;
  }
  EXPECT_GT(bucket, 0.0);
}

}  // namespace
}  // namespace pvdb
