// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// End-to-end integration: full PNNQ pipelines over synthetic and
// real-simulacrum data, all three Step-1 indexes cross-checked against each
// other and the oracle, with updates interleaved — the whole system
// exercised the way the paper's experiments use it.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/random.h"
#include "src/eval/workload.h"
#include "src/pv/pnnq.h"
#include "src/pv/pv_index.h"
#include "src/rtree/rtree_pnn.h"
#include "src/storage/pager.h"
#include "src/uncertain/datagen.h"
#include "src/uv/uv_index.h"

namespace pvdb {
namespace {

std::vector<uncertain::ObjectId> SortedIds(
    std::vector<uncertain::ObjectId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(IntegrationTest, FullPipelineAllIndexesAgree2D) {
  uncertain::SyntheticOptions synth;
  synth.dim = 2;
  synth.count = 350;
  synth.samples_per_object = 60;
  synth.seed = 1;
  const auto db = uncertain::GenerateSynthetic(synth);

  storage::InMemoryPager pv_pager, uv_pager;
  auto pv_index = pv::PvIndex::Build(db, &pv_pager, pv::PvIndexOptions{});
  ASSERT_TRUE(pv_index.ok());
  uv::UvIndexOptions uv_options;
  uv_options.cell.rays = 32;
  auto uv_index = uv::UvIndex::Build(db, &uv_pager, uv_options);
  ASSERT_TRUE(uv_index.ok());
  const rtree::RStarTree region_tree = eval::BuildRegionTree(db);
  pv::PnnStep2Evaluator step2(&db);

  Rng rng(2);
  for (int q = 0; q < 40; ++q) {
    const geom::Point query{rng.NextUniform(0, 10000),
                            rng.NextUniform(0, 10000)};
    const auto oracle = pv::Step1BruteForce(db, query);
    auto via_pv = pv_index.value()->QueryPossibleNN(query);
    auto via_uv = uv_index.value()->QueryPossibleNN(query);
    ASSERT_TRUE(via_pv.ok());
    ASSERT_TRUE(via_uv.ok());
    EXPECT_EQ(SortedIds(via_pv.value()), oracle);
    EXPECT_EQ(via_uv.value(), oracle);
    EXPECT_EQ(rtree::PnnStep1BranchAndPrune(region_tree, query), oracle);

    // Step 2 on the shared candidates: a probability distribution.
    const auto answers = step2.Evaluate(query, oracle);
    double total = 0;
    for (const auto& a : answers) total += a.probability;
    EXPECT_NEAR(total, 1.0, 1e-6);
    EXPECT_LE(answers.size(), oracle.size());
  }
}

TEST(IntegrationTest, RealSimulacraPipelines) {
  uncertain::RealDataOptions options;
  options.scale = 0.01;  // 300 / 360 / 200 objects
  options.samples_per_object = 30;
  for (auto kind : {uncertain::RealDataset::kRoads,
                    uncertain::RealDataset::kRRLines,
                    uncertain::RealDataset::kAirports}) {
    const auto db = uncertain::GenerateRealLike(kind, options);
    storage::InMemoryPager pager;
    auto index = pv::PvIndex::Build(db, &pager, pv::PvIndexOptions{});
    ASSERT_TRUE(index.ok()) << uncertain::RealDatasetName(kind);
    Rng rng(3);
    for (int q = 0; q < 25; ++q) {
      geom::Point query(db.dim());
      for (int i = 0; i < db.dim(); ++i) {
        query[i] = rng.NextUniform(db.domain().lo(i), db.domain().hi(i));
      }
      auto got = index.value()->QueryPossibleNN(query);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(SortedIds(got.value()), pv::Step1BruteForce(db, query))
          << uncertain::RealDatasetName(kind) << " query "
          << query.ToString();
    }
  }
}

TEST(IntegrationTest, LifecycleBuildQueryChurnQuery) {
  uncertain::SyntheticOptions synth;
  synth.dim = 3;
  synth.count = 180;
  synth.samples_per_object = 20;
  synth.seed = 4;
  auto db = uncertain::GenerateSynthetic(synth);
  storage::InMemoryPager pager;
  auto index = pv::PvIndex::Build(db, &pager, pv::PvIndexOptions{});
  ASSERT_TRUE(index.ok());

  Rng rng(5);
  auto verify = [&](uint64_t seed) {
    Rng qrng(seed);
    for (int q = 0; q < 20; ++q) {
      geom::Point query(3);
      for (int i = 0; i < 3; ++i) query[i] = qrng.NextUniform(0, 10000);
      auto got = index.value()->QueryPossibleNN(query);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(SortedIds(got.value()), pv::Step1BruteForce(db, query));
    }
  };
  verify(100);

  // Churn: 20 deletes, 20 inserts, verify between phases.
  auto ids = db.Ids();
  rng.Shuffle(&ids);
  for (int k = 0; k < 20; ++k) {
    const auto victim = ids[static_cast<size_t>(k)];
    const uncertain::UncertainObject removed = *db.Find(victim);
    ASSERT_TRUE(db.Remove(victim).ok());
    ASSERT_TRUE(index.value()->DeleteObject(db, removed).ok());
  }
  verify(101);
  for (int k = 0; k < 20; ++k) {
    const auto id = static_cast<uncertain::ObjectId>(900000 + k);
    geom::Point c(3);
    for (int i = 0; i < 3; ++i) c[i] = rng.NextUniform(200, 9800);
    ASSERT_TRUE(db.Add(uncertain::UncertainObject::UniformSampled(
                          id,
                          geom::Rect::FromCenterHalfWidths(
                              c, geom::Point{10, 10, 10}),
                          20, &rng))
                    .ok());
    ASSERT_TRUE(index.value()->InsertObject(db, id).ok());
  }
  verify(102);

  // Probabilities still form a distribution after churn.
  pv::PnnStep2Evaluator step2(&db);
  const geom::Point query{5000, 5000, 5000};
  auto step1 = index.value()->QueryPossibleNN(query);
  ASSERT_TRUE(step1.ok());
  const auto answers = step2.Evaluate(query, step1.value());
  double total = 0;
  for (const auto& a : answers) total += a.probability;
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(IntegrationTest, FilePagerBackedIndexWorks) {
  // The whole index also runs on a real file-backed pager.
  uncertain::SyntheticOptions synth;
  synth.dim = 2;
  synth.count = 80;
  synth.samples_per_object = 10;
  synth.seed = 6;
  const auto db = uncertain::GenerateSynthetic(synth);
  const std::string path = ::testing::TempDir() + "/pvdb_integration.pages";
  auto pager = storage::FilePager::Create(path);
  ASSERT_TRUE(pager.ok());
  auto index = pv::PvIndex::Build(db, pager.value().get(),
                                  pv::PvIndexOptions{});
  ASSERT_TRUE(index.ok());
  Rng rng(7);
  for (int q = 0; q < 15; ++q) {
    const geom::Point query{rng.NextUniform(0, 10000),
                            rng.NextUniform(0, 10000)};
    auto got = index.value()->QueryPossibleNN(query);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(SortedIds(got.value()), pv::Step1BruteForce(db, query));
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pvdb
