// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Storage engine tests: pagers (allocation, free-list reuse, I/O counters,
// file round-trips), the record store (multi-page chains, prefix access)
// and extensible hashing (splits, directory doubling, deletes) under load.

#include <gtest/gtest.h>

#include <cstdio>
#include <map>

#include "src/common/random.h"
#include "src/storage/extendible_hash.h"
#include "src/storage/pager.h"
#include "src/storage/record_store.h"

namespace pvdb::storage {
namespace {

// ---------------------------------------------------------------------------
// Pagers
// ---------------------------------------------------------------------------

TEST(InMemoryPagerTest, AllocateReadWriteRoundTrip) {
  InMemoryPager pager;
  auto id = pager.Allocate();
  ASSERT_TRUE(id.ok());
  Page w;
  w.WriteAt<uint64_t>(0, 0xDEADBEEFULL);
  w.WriteAt<double>(100, 3.25);
  ASSERT_TRUE(pager.Write(id.value(), w).ok());
  Page r;
  ASSERT_TRUE(pager.Read(id.value(), &r).ok());
  EXPECT_EQ(r.ReadAt<uint64_t>(0), 0xDEADBEEFULL);
  EXPECT_EQ(r.ReadAt<double>(100), 3.25);
}

TEST(InMemoryPagerTest, CountersTrackOperations) {
  InMemoryPager pager;
  auto id = pager.Allocate();
  ASSERT_TRUE(id.ok());
  Page p;
  ASSERT_TRUE(pager.Write(id.value(), p).ok());
  ASSERT_TRUE(pager.Read(id.value(), &p).ok());
  ASSERT_TRUE(pager.Read(id.value(), &p).ok());
  EXPECT_EQ(pager.metrics().Get(PagerCounters::kAllocs), 1);
  EXPECT_EQ(pager.metrics().Get(PagerCounters::kWrites), 1);
  EXPECT_EQ(pager.metrics().Get(PagerCounters::kReads), 2);
}

TEST(InMemoryPagerTest, FreeReusesPages) {
  InMemoryPager pager;
  auto a = pager.Allocate();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(pager.Free(a.value()).ok());
  EXPECT_EQ(pager.LivePageCount(), 0u);
  auto b = pager.Allocate();
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), b.value()) << "freed page id must be reused";
  // Reused page must come back zeroed.
  Page p;
  ASSERT_TRUE(pager.Read(b.value(), &p).ok());
  EXPECT_EQ(p.ReadAt<uint64_t>(0), 0u);
}

TEST(InMemoryPagerTest, InvalidAccessRejected) {
  InMemoryPager pager;
  Page p;
  EXPECT_FALSE(pager.Read(3, &p).ok());
  auto id = pager.Allocate();
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(pager.Free(id.value()).ok());
  EXPECT_FALSE(pager.Read(id.value(), &p).ok());
  EXPECT_FALSE(pager.Free(id.value()).ok());
}

TEST(FilePagerTest, PersistsAcrossPages) {
  const std::string path = ::testing::TempDir() + "/pvdb_filepager_test.bin";
  auto pager = FilePager::Create(path);
  ASSERT_TRUE(pager.ok());
  std::vector<PageId> ids;
  for (int i = 0; i < 10; ++i) {
    auto id = pager.value()->Allocate();
    ASSERT_TRUE(id.ok());
    Page p;
    p.WriteAt<int>(0, i * 31);
    ASSERT_TRUE(pager.value()->Write(id.value(), p).ok());
    ids.push_back(id.value());
  }
  for (int i = 0; i < 10; ++i) {
    Page p;
    ASSERT_TRUE(pager.value()->Read(ids[static_cast<size_t>(i)], &p).ok());
    EXPECT_EQ(p.ReadAt<int>(0), i * 31);
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// RecordStore
// ---------------------------------------------------------------------------

std::vector<uint8_t> MakeBlob(size_t n, uint8_t seed) {
  std::vector<uint8_t> blob(n);
  for (size_t i = 0; i < n; ++i) {
    blob[i] = static_cast<uint8_t>((i * 131 + seed) & 0xFF);
  }
  return blob;
}

TEST(RecordStoreTest, SmallRecordRoundTrip) {
  InMemoryPager pager;
  RecordStore store(&pager);
  const auto blob = MakeBlob(100, 1);
  auto ref = store.Put(blob);
  ASSERT_TRUE(ref.ok());
  auto back = store.Get(ref.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), blob);
}

TEST(RecordStoreTest, MultiPageRecordRoundTrip) {
  InMemoryPager pager;
  RecordStore store(&pager);
  // A ~16 KB record spans 4 pages of 4084-byte payloads.
  const auto blob = MakeBlob(16000, 2);
  auto ref = store.Put(blob);
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(RecordStore::PagesNeeded(blob.size()), 4u);
  auto back = store.Get(ref.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), blob);
}

TEST(RecordStoreTest, EmptyRecordSupported) {
  InMemoryPager pager;
  RecordStore store(&pager);
  auto ref = store.Put({});
  ASSERT_TRUE(ref.ok());
  auto back = store.Get(ref.value());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value().empty());
}

TEST(RecordStoreTest, DeleteFreesAllPages) {
  InMemoryPager pager;
  RecordStore store(&pager);
  auto ref = store.Put(MakeBlob(20000, 3));
  ASSERT_TRUE(ref.ok());
  const size_t live = pager.LivePageCount();
  EXPECT_GE(live, 5u);
  ASSERT_TRUE(store.Delete(ref.value()).ok());
  EXPECT_EQ(pager.LivePageCount(), 0u);
  EXPECT_FALSE(store.Get(ref.value()).ok());
}

TEST(RecordStoreTest, UpdateInPlaceWhenSameSize) {
  InMemoryPager pager;
  RecordStore store(&pager);
  auto ref = store.Put(MakeBlob(9000, 4));
  ASSERT_TRUE(ref.ok());
  const auto new_blob = MakeBlob(9100, 5);  // same page count
  ASSERT_EQ(RecordStore::PagesNeeded(9000), RecordStore::PagesNeeded(9100));
  auto ref2 = store.Update(ref.value(), new_blob);
  ASSERT_TRUE(ref2.ok());
  EXPECT_EQ(ref2.value().head, ref.value().head) << "chain must be reused";
  auto back = store.Get(ref2.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), new_blob);
}

TEST(RecordStoreTest, UpdateReallocatesWhenGrowing) {
  InMemoryPager pager;
  RecordStore store(&pager);
  auto ref = store.Put(MakeBlob(100, 6));
  ASSERT_TRUE(ref.ok());
  const auto big = MakeBlob(30000, 7);
  auto ref2 = store.Update(ref.value(), big);
  ASSERT_TRUE(ref2.ok());
  auto back = store.Get(ref2.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), big);
}

TEST(RecordStoreTest, PrefixReadAndWrite) {
  InMemoryPager pager;
  RecordStore store(&pager);
  auto blob = MakeBlob(12000, 8);
  auto ref = store.Put(blob);
  ASSERT_TRUE(ref.ok());

  auto prefix = store.GetPrefix(ref.value(), 64);
  ASSERT_TRUE(prefix.ok());
  EXPECT_EQ(prefix.value(),
            std::vector<uint8_t>(blob.begin(), blob.begin() + 64));

  // Overwrite the prefix and confirm the tail is untouched.
  const auto patch = MakeBlob(64, 9);
  ASSERT_TRUE(store.WritePrefix(ref.value(), patch).ok());
  auto back = store.Get(ref.value());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(std::equal(patch.begin(), patch.end(), back.value().begin()));
  EXPECT_TRUE(std::equal(blob.begin() + 64, blob.end(),
                         back.value().begin() + 64));
}

TEST(RecordStoreTest, PrefixBoundsChecked) {
  InMemoryPager pager;
  RecordStore store(&pager);
  auto ref = store.Put(MakeBlob(50, 10));
  ASSERT_TRUE(ref.ok());
  EXPECT_FALSE(store.GetPrefix(ref.value(), 51).ok());
  EXPECT_FALSE(store.WritePrefix(ref.value(), MakeBlob(51, 1)).ok());
}

// ---------------------------------------------------------------------------
// ExtendibleHash
// ---------------------------------------------------------------------------

TEST(ExtendibleHashTest, PutGetDelete) {
  InMemoryPager pager;
  auto table = ExtendibleHash::Create(&pager);
  ASSERT_TRUE(table.ok());
  RecordRef ref{42, 100};
  ASSERT_TRUE(table.value().Put(7, ref).ok());
  auto got = table.value().Get(7);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), ref);
  EXPECT_EQ(table.value().Size(), 1u);
  ASSERT_TRUE(table.value().Delete(7).ok());
  EXPECT_FALSE(table.value().Get(7).ok());
  EXPECT_EQ(table.value().Size(), 0u);
}

TEST(ExtendibleHashTest, OverwriteKeepsSize) {
  InMemoryPager pager;
  auto table = ExtendibleHash::Create(&pager);
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(table.value().Put(1, RecordRef{10, 1}).ok());
  ASSERT_TRUE(table.value().Put(1, RecordRef{20, 2}).ok());
  EXPECT_EQ(table.value().Size(), 1u);
  auto got = table.value().Get(1);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().head, 20u);
}

TEST(ExtendibleHashTest, GrowsThroughSplitsAndStaysConsistent) {
  InMemoryPager pager;
  auto table = ExtendibleHash::Create(&pager);
  ASSERT_TRUE(table.ok());
  std::map<uint64_t, RecordRef> model;
  Rng rng(55);
  const int n = 5000;  // >> bucket capacity (170), forces many splits
  for (int i = 0; i < n; ++i) {
    const uint64_t key = rng.NextU64() % 100000;
    const RecordRef ref{static_cast<PageId>(i), static_cast<uint64_t>(i * 3)};
    ASSERT_TRUE(table.value().Put(key, ref).ok());
    model[key] = ref;
  }
  EXPECT_EQ(table.value().Size(), model.size());
  EXPECT_GT(table.value().GlobalDepth(), 3);
  EXPECT_GT(table.value().BucketCount(), 8u);
  for (const auto& [key, ref] : model) {
    auto got = table.value().Get(key);
    ASSERT_TRUE(got.ok()) << "missing key " << key;
    EXPECT_EQ(got.value(), ref);
  }
  // Absent keys must be NotFound.
  EXPECT_FALSE(table.value().Get(100001).ok());
}

TEST(ExtendibleHashTest, KeysEnumeratesEverything) {
  InMemoryPager pager;
  auto table = ExtendibleHash::Create(&pager);
  ASSERT_TRUE(table.ok());
  for (uint64_t k = 0; k < 1000; ++k) {
    ASSERT_TRUE(table.value().Put(k, RecordRef{k, k}).ok());
  }
  auto keys = table.value().Keys();
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(keys.value().size(), 1000u);
  std::sort(keys.value().begin(), keys.value().end());
  for (uint64_t k = 0; k < 1000; ++k) EXPECT_EQ(keys.value()[k], k);
}

TEST(ExtendibleHashTest, DeleteUnderLoad) {
  InMemoryPager pager;
  auto table = ExtendibleHash::Create(&pager);
  ASSERT_TRUE(table.ok());
  for (uint64_t k = 0; k < 2000; ++k) {
    ASSERT_TRUE(table.value().Put(k, RecordRef{k, 1}).ok());
  }
  for (uint64_t k = 0; k < 2000; k += 2) {
    ASSERT_TRUE(table.value().Delete(k).ok());
  }
  EXPECT_EQ(table.value().Size(), 1000u);
  for (uint64_t k = 0; k < 2000; ++k) {
    EXPECT_EQ(table.value().Get(k).ok(), k % 2 == 1);
  }
}

TEST(ExtendibleHashTest, LookupIsSinglePageRead) {
  InMemoryPager pager;
  auto table = ExtendibleHash::Create(&pager);
  ASSERT_TRUE(table.ok());
  for (uint64_t k = 0; k < 3000; ++k) {
    ASSERT_TRUE(table.value().Put(k, RecordRef{k, 1}).ok());
  }
  const int64_t before = pager.metrics().Get(PagerCounters::kReads);
  ASSERT_TRUE(table.value().Get(1234).ok());
  EXPECT_EQ(pager.metrics().Get(PagerCounters::kReads) - before, 1)
      << "extensible hashing must answer lookups with one bucket read";
}

}  // namespace
}  // namespace pvdb::storage
