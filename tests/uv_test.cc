// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// UV baseline tests ([9] substitute, see DESIGN.md §4): circle geometry,
// conservative cell covers, index answer-set equality with the brute-force
// oracle on 2D data, 2D-only enforcement, and the construction-cost
// relationship vs the PV-index that Figure 10(g) relies on.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/random.h"
#include "src/common/timer.h"
#include "src/pv/pnnq.h"
#include "src/pv/pv_index.h"
#include "src/storage/pager.h"
#include "src/uncertain/datagen.h"
#include "src/uv/uv_cell.h"
#include "src/uv/uv_index.h"

namespace pvdb::uv {
namespace {

TEST(UvCellTest, CircumscribeCoversRectangle) {
  const geom::Rect r(geom::Point{0, 0}, geom::Point{6, 8});
  const Circle c = Circumscribe(r);
  EXPECT_EQ(c.center, (geom::Point{3, 4}));
  EXPECT_DOUBLE_EQ(c.radius, 5.0);
  // Every corner lies on/in the circle.
  for (unsigned mask = 0; mask < 4; ++mask) {
    EXPECT_LE(r.Corner(mask).DistanceTo(c.center), c.radius + 1e-12);
  }
}

TEST(UvCellTest, CirclePointPredicateMatchesDistances) {
  const Circle o{geom::Point{100, 100}, 10};
  const std::vector<Circle> others{{geom::Point{300, 100}, 5}};
  // Near o: possible. Past the midline (shifted by the radii): impossible.
  EXPECT_TRUE(CirclePointPossiblyNearest(o, others, geom::Point{120, 100}));
  EXPECT_FALSE(CirclePointPossiblyNearest(o, others, geom::Point{290, 100}));
}

struct UvFixture {
  explicit UvFixture(size_t count, uint64_t seed, int samples = 6) {
    uncertain::SyntheticOptions synth;
    synth.dim = 2;
    synth.count = count;
    synth.samples_per_object = samples;
    synth.seed = seed;
    db = std::make_unique<uncertain::Dataset>(
        uncertain::GenerateSynthetic(synth));
  }
  std::unique_ptr<uncertain::Dataset> db;
};

TEST(UvCellTest, CoverContainsRectSemanticsCell) {
  // The circle-based cover must contain every point where o is possibly
  // nearest under the *rectangle* semantics (circles only loosen bounds).
  UvFixture fx(50, /*seed=*/21);
  UvCellOptions options;
  options.rays = 16;  // cheap probe; correctness comes from the cover
  for (size_t pick = 0; pick < 5; ++pick) {
    const auto& o = fx.db->objects()[pick * 9];
    std::vector<geom::Rect> others;
    for (const auto& other : fx.db->objects()) {
      if (other.id() != o.id()) others.push_back(other.region());
    }
    const UvCover cover =
        ComputeUvCover(o, others, fx.db->domain(), options);
    ASSERT_FALSE(cover.cells.empty());
    EXPECT_TRUE(cover.mbr.ContainsRect(o.region()));

    Rng rng(22);
    auto covered = [&](const geom::Point& p) {
      for (const auto& cell : cover.cells) {
        if (cell.Contains(p)) return true;
      }
      return false;
    };
    for (int s = 0; s < 3000; ++s) {
      const geom::Point p{rng.NextUniform(0, 10000),
                          rng.NextUniform(0, 10000)};
      if (geom::PointPossiblyNearest(o.region(), others, p)) {
        EXPECT_TRUE(covered(p))
            << "possibly-nearest point escaped the UV cover";
      }
    }
  }
}

TEST(UvCellTest, CoverCellsAreDisjointAndWithinDomain) {
  UvFixture fx(40, /*seed=*/23);
  const auto& o = fx.db->objects()[0];
  std::vector<geom::Rect> others;
  for (const auto& other : fx.db->objects()) {
    if (other.id() != o.id()) others.push_back(other.region());
  }
  UvCellOptions options;
  options.rays = 8;
  const UvCover cover = ComputeUvCover(o, others, fx.db->domain(), options);
  for (size_t i = 0; i < cover.cells.size(); ++i) {
    EXPECT_TRUE(fx.db->domain().ContainsRect(cover.cells[i]));
    for (size_t j = i + 1; j < cover.cells.size(); ++j) {
      EXPECT_FALSE(cover.cells[i].InteriorIntersects(cover.cells[j]));
    }
  }
}

TEST(UvIndexTest, RejectsNon2D) {
  uncertain::SyntheticOptions synth;
  synth.dim = 3;
  synth.count = 10;
  synth.samples_per_object = 3;
  const auto db = uncertain::GenerateSynthetic(synth);
  storage::InMemoryPager pager;
  EXPECT_EQ(UvIndex::Build(db, &pager, UvIndexOptions{}).status().code(),
            StatusCode::kNotSupported);
}

TEST(UvIndexTest, Step1MatchesBruteForce) {
  UvFixture fx(250, /*seed=*/24);
  storage::InMemoryPager pager;
  UvIndexOptions options;
  options.cell.rays = 32;  // keep the test fast
  auto index = UvIndex::Build(*fx.db, &pager, options);
  ASSERT_TRUE(index.ok());
  Rng rng(25);
  for (int q = 0; q < 80; ++q) {
    const geom::Point query{rng.NextUniform(0, 10000),
                            rng.NextUniform(0, 10000)};
    auto got = index.value()->QueryPossibleNN(query);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value(), pv::Step1BruteForce(*fx.db, query))
        << "query " << query.ToString();
  }
}

TEST(UvIndexTest, AgreesWithPvIndex) {
  UvFixture fx(200, /*seed=*/26);
  storage::InMemoryPager uv_pager, pv_pager;
  UvIndexOptions uv_options;
  uv_options.cell.rays = 32;
  auto uv_index = UvIndex::Build(*fx.db, &uv_pager, uv_options);
  ASSERT_TRUE(uv_index.ok());
  auto pv_index = pv::PvIndex::Build(*fx.db, &pv_pager, pv::PvIndexOptions{});
  ASSERT_TRUE(pv_index.ok());
  Rng rng(27);
  for (int q = 0; q < 60; ++q) {
    const geom::Point query{rng.NextUniform(0, 10000),
                            rng.NextUniform(0, 10000)};
    auto a = uv_index.value()->QueryPossibleNN(query);
    auto b = pv_index.value()->QueryPossibleNN(query);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    auto ids = b.value();
    std::sort(ids.begin(), ids.end());
    EXPECT_EQ(a.value(), ids);
  }
}

TEST(UvIndexTest, ConstructionCostlierThanPv) {
  // The cost-structure property behind Figure 10(g): per-object boundary
  // geometry (UV) is an order of magnitude above SE's slab tests (PV).
  UvFixture fx(150, /*seed=*/28);
  storage::InMemoryPager uv_pager, pv_pager;
  UvBuildStats uv_stats;
  auto uv_index =
      UvIndex::Build(*fx.db, &uv_pager, UvIndexOptions{}, &uv_stats);
  ASSERT_TRUE(uv_index.ok());
  pv::BuildStats pv_stats;
  auto pv_index = pv::PvIndex::Build(*fx.db, &pv_pager, pv::PvIndexOptions{},
                                     &pv_stats);
  ASSERT_TRUE(pv_index.ok());
  EXPECT_GT(uv_stats.total_ms, 2.0 * pv_stats.total_ms)
      << "UV construction should be clearly slower (paper: 15-25x)";
}

}  // namespace
}  // namespace pvdb::uv
