// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Forced-level parity net for the runtime-dispatched SIMD kernels
// (geom::simd_dispatch.h): every level this build+CPU can run is forced in
// turn and required to reproduce the scalar reference BIT-IDENTICALLY —
// randomized rects, degenerate rects (zero-extent slabs, point rects,
// probes inside and exactly on boundaries), every tail-lane remainder
// length 1..width-1, and the ordered compress kernel over every lane mask
// pattern. Plus the dispatch controls themselves: level ordering, name
// round-trips, unsupported-level rejection.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "src/common/random.h"
#include "src/geom/distance.h"
#include "src/geom/distance_batch.h"
#include "src/geom/simd_dispatch.h"
#include "src/pv/pnnq.h"

namespace pvdb {
namespace {

constexpr geom::SimdLevel kAllLevels[] = {
    geom::SimdLevel::kScalar, geom::SimdLevel::kSse2, geom::SimdLevel::kAvx2,
    geom::SimdLevel::kAvx512};

/// Restores the entry level on scope exit so tests don't leak a forced
/// level into each other (or into the PVDB_SIMD_LEVEL the CI job set).
class ScopedSimdLevel {
 public:
  ScopedSimdLevel() : saved_(geom::ActiveSimdLevel()) {}
  ~ScopedSimdLevel() { geom::ForceSimdLevel(saved_); }

 private:
  geom::SimdLevel saved_;
};

/// Runs `body` once per level this build+CPU supports, forced.
template <typename Body>
void ForEachUsableLevel(const Body& body) {
  ScopedSimdLevel restore;
  for (geom::SimdLevel level : kAllLevels) {
    if (level > geom::MaxUsableSimdLevel()) continue;
    ASSERT_TRUE(geom::ForceSimdLevel(level)) << geom::SimdLevelName(level);
    ASSERT_EQ(geom::ActiveSimdLevel(), level);
    body(level);
  }
}

geom::Rect RandomRect(Rng* rng, int dim, double domain, double max_extent) {
  geom::Point lo(dim), hi(dim);
  for (int d = 0; d < dim; ++d) {
    lo[d] = rng->NextUniform(0.0, domain - max_extent);
    hi[d] = lo[d] + rng->NextUniform(0.0, max_extent);
  }
  return geom::Rect(lo, hi);
}

geom::Point RandomPoint(Rng* rng, int dim, double domain) {
  geom::Point p(dim);
  for (int d = 0; d < dim; ++d) p[d] = rng->NextUniform(0.0, domain);
  return p;
}

/// Batched kernels at the active (forced) level vs the per-Rect scalar
/// functions — the dispatch-independent reference. EXPECT_EQ: bit-identical.
void ExpectBatchMatchesScalar(const std::vector<geom::Rect>& rects,
                              const geom::Point& q, const char* level_name) {
  ASSERT_FALSE(rects.empty());
  geom::RectSoA soa(rects[0].dim());
  soa.Reserve(rects.size());
  for (const geom::Rect& r : rects) soa.PushBack(r);

  std::vector<double> min_out(rects.size()), max_out(rects.size());
  std::vector<double> fused_min(rects.size()), fused_max(rects.size());
  geom::MinDistSqBatch(soa, q, min_out);
  geom::MaxDistSqBatch(soa, q, max_out);
  geom::MinMaxDistSqBatch(soa, q, fused_min, fused_max);
  for (size_t i = 0; i < rects.size(); ++i) {
    EXPECT_EQ(min_out[i], geom::MinDistSq(rects[i], q))
        << level_name << " rect " << i;
    EXPECT_EQ(max_out[i], geom::MaxDistSq(rects[i], q))
        << level_name << " rect " << i;
    EXPECT_EQ(fused_min[i], min_out[i]) << level_name << " rect " << i;
    EXPECT_EQ(fused_max[i], max_out[i]) << level_name << " rect " << i;
  }
}

// ---------------------------------------------------------------------------
// Dispatch controls
// ---------------------------------------------------------------------------

TEST(SimdDispatchTest, LevelLadderIsConsistent) {
  EXPECT_LE(geom::MaxUsableSimdLevel(), geom::MaxCompiledSimdLevel());
  EXPECT_LE(geom::MaxUsableSimdLevel(), geom::DetectCpuSimdLevel());
  EXPECT_LE(geom::ActiveSimdLevel(), geom::MaxUsableSimdLevel());
  EXPECT_EQ(geom::SimdLaneWidthDoubles(geom::SimdLevel::kScalar), 1);
  EXPECT_EQ(geom::SimdLaneWidthDoubles(geom::SimdLevel::kSse2), 2);
  EXPECT_EQ(geom::SimdLaneWidthDoubles(geom::SimdLevel::kAvx2), 4);
  EXPECT_EQ(geom::SimdLaneWidthDoubles(geom::SimdLevel::kAvx512), 8);
}

TEST(SimdDispatchTest, NamesRoundTrip) {
  for (geom::SimdLevel level : kAllLevels) {
    geom::SimdLevel parsed;
    ASSERT_TRUE(geom::ParseSimdLevel(geom::SimdLevelName(level), &parsed));
    EXPECT_EQ(parsed, level);
  }
  geom::SimdLevel unused;
  EXPECT_FALSE(geom::ParseSimdLevel("", &unused));
  EXPECT_FALSE(geom::ParseSimdLevel("AVX2", &unused)) << "case-sensitive";
  EXPECT_FALSE(geom::ParseSimdLevel("avx", &unused));
  EXPECT_FALSE(geom::ParseSimdLevel("avx512vl", &unused));
}

TEST(SimdDispatchTest, ForceRejectsUnsupportedLevels) {
  ScopedSimdLevel restore;
  const geom::SimdLevel before = geom::ActiveSimdLevel();
  for (geom::SimdLevel level : kAllLevels) {
    if (level <= geom::MaxUsableSimdLevel()) {
      EXPECT_TRUE(geom::ForceSimdLevel(level));
      EXPECT_EQ(geom::ActiveSimdLevel(), level);
      ASSERT_TRUE(geom::ForceSimdLevel(before));
    } else {
      EXPECT_FALSE(geom::ForceSimdLevel(level))
          << geom::SimdLevelName(level) << " exceeds the usable ceiling";
      EXPECT_EQ(geom::ActiveSimdLevel(), before) << "rejected force mutated";
    }
  }
}

// ---------------------------------------------------------------------------
// Distance kernels: forced-level bit-identity vs the scalar reference
// ---------------------------------------------------------------------------

TEST(SimdKernelParityTest, RandomRectsEveryLevel) {
  ForEachUsableLevel([](geom::SimdLevel level) {
    Rng rng(101);
    for (int dim : {2, 3, 5, geom::kMaxDim}) {
      for (int round = 0; round < 10; ++round) {
        std::vector<geom::Rect> rects;
        for (int i = 0; i < 67; ++i) {  // odd count: tail lanes included
          rects.push_back(RandomRect(&rng, dim, 1000.0, 120.0));
        }
        ExpectBatchMatchesScalar(rects, RandomPoint(&rng, dim, 1000.0),
                                 geom::SimdLevelName(level));
      }
    }
  });
}

TEST(SimdKernelParityTest, EveryTailRemainderEveryLevel) {
  // n = 1 .. 2*width+3 covers every remainder length 1..width-1 of the
  // widest kernel (8 lanes), both with and without a preceding full vector.
  ForEachUsableLevel([](geom::SimdLevel level) {
    Rng rng(103);
    const int width = geom::SimdLaneWidthDoubles(level);
    for (size_t n = 1; n <= static_cast<size_t>(2 * width + 3); ++n) {
      std::vector<geom::Rect> rects;
      for (size_t i = 0; i < n; ++i) {
        rects.push_back(RandomRect(&rng, 3, 1000.0, 100.0));
      }
      for (int round = 0; round < 8; ++round) {
        ExpectBatchMatchesScalar(rects, RandomPoint(&rng, 3, 1000.0),
                                 geom::SimdLevelName(level));
      }
    }
  });
}

TEST(SimdKernelParityTest, DegenerateRectsEveryLevel) {
  ForEachUsableLevel([](geom::SimdLevel level) {
    Rng rng(107);
    for (int dim : {2, 3, 5}) {
      std::vector<geom::Rect> rects;
      // Zero-extent in 1..dim dimensions (slabs down to exact points).
      for (int flat = 1; flat <= dim; ++flat) {
        for (int i = 0; i < 9; ++i) {
          geom::Rect r = RandomRect(&rng, dim, 1000.0, 100.0);
          for (int k = 0; k < flat; ++k) {
            const int d = static_cast<int>(rng.NextUniform(0, dim)) % dim;
            r.set_hi(d, r.lo(d));
          }
          rects.push_back(r);
        }
      }
      // Probes: random, strictly inside, lo/hi corners, on one face.
      std::vector<geom::Point> probes;
      for (int i = 0; i < 6; ++i) {
        probes.push_back(RandomPoint(&rng, dim, 1000.0));
      }
      probes.push_back(rects[0].Center());
      probes.push_back(rects[1].lo());
      probes.push_back(rects[2].hi());
      geom::Point face = rects[3].Center();
      face[0] = rects[3].lo(0);
      probes.push_back(face);
      for (const geom::Point& q : probes) {
        ExpectBatchMatchesScalar(rects, q, geom::SimdLevelName(level));
      }
    }
  });
}

// ---------------------------------------------------------------------------
// MinReduce: forced-level bit-identity vs a plain sequential minimum
// ---------------------------------------------------------------------------

TEST(MinReduceParityTest, RandomAndTiedInputsEveryLengthEveryLevel) {
  ForEachUsableLevel([](geom::SimdLevel level) {
    Rng rng(137);
    const char* name = geom::SimdLevelName(level);
    EXPECT_EQ(geom::MinReduce(nullptr, 0),
              std::numeric_limits<double>::infinity())
        << name;
    // Lengths cover every tail remainder of the widest (8-lane) kernel,
    // with and without preceding full vectors.
    for (size_t n = 1; n <= 19; ++n) {
      for (int round = 0; round < 8; ++round) {
        std::vector<double> x(n);
        for (double& v : x) v = rng.NextUniform(0.0, 1e6);
        // Exact ties in random slots: the min is tie-insensitive.
        if (n > 2) x[n / 2] = x[0];
        double expected = x[0];
        for (double v : x) expected = v < expected ? v : expected;
        EXPECT_EQ(geom::MinReduce(x.data(), n), expected)
            << name << " n=" << n;
      }
      // Degenerate: all equal, zeros, the minimum in every position.
      std::vector<double> flat(n, 3.25);
      EXPECT_EQ(geom::MinReduce(flat.data(), n), 3.25) << name;
      std::vector<double> zeros(n, 0.0);
      EXPECT_EQ(geom::MinReduce(zeros.data(), n), 0.0) << name;
      for (size_t pos = 0; pos < n; ++pos) {
        std::vector<double> v(n, 100.0);
        v[pos] = 1.0;
        EXPECT_EQ(geom::MinReduce(v.data(), n), 1.0)
            << name << " n=" << n << " pos=" << pos;
      }
    }
  });
}

// ---------------------------------------------------------------------------
// PointDistBatch: forced-level bit-identity vs Point::DistanceTo
// ---------------------------------------------------------------------------

TEST(PointDistBatchParityTest, StridedLayoutEveryDimEveryLevel) {
  // dim >= 6 exercises the AVX-512 gather path; the stride mimics the
  // Step-2 Instance layout (coords at offset 0, trailing payload doubles).
  ForEachUsableLevel([](geom::SimdLevel level) {
    Rng rng(139);
    const char* name = geom::SimdLevelName(level);
    for (int dim : {1, 2, 3, 5, 6, 7, geom::kMaxDim}) {
      for (size_t stride :
           {static_cast<size_t>(dim), static_cast<size_t>(dim) + 2,
            static_cast<size_t>(10)}) {
        if (stride < static_cast<size_t>(dim)) continue;
        // Every tail remainder of the widest (8-lane) kernel.
        for (size_t n = 0; n <= 19; ++n) {
          std::vector<double> base(n * stride);
          for (double& v : base) v = rng.NextUniform(-500.0, 500.0);
          const geom::Point q = RandomPoint(&rng, dim, 1000.0);
          std::vector<double> out(n, -1.0);
          geom::PointDistBatch(base.data(), stride, q, n, out.data());
          for (size_t k = 0; k < n; ++k) {
            geom::Point p(dim);
            for (int d = 0; d < dim; ++d) p[d] = base[k * stride + d];
            EXPECT_EQ(out[k], p.DistanceTo(q))
                << name << " dim=" << dim << " stride=" << stride
                << " n=" << n << " k=" << k;
          }
        }
      }
    }
  });
}

TEST(PointDistBatchParityTest, CoincidentAndAxisAlignedPointsEveryLevel) {
  ForEachUsableLevel([](geom::SimdLevel level) {
    const char* name = geom::SimdLevelName(level);
    const int dim = 3;
    const size_t n = 11;
    const size_t stride = 10;
    std::vector<double> base(n * stride, 0.0);
    geom::Point q(dim);
    q[0] = 1.0;
    q[1] = -2.0;
    q[2] = 0.5;
    // Point 0 coincides with q (distance exactly 0); the rest differ in one
    // axis only (exact representable distances).
    for (int d = 0; d < dim; ++d) base[d] = q[d];
    for (size_t k = 1; k < n; ++k) {
      for (int d = 0; d < dim; ++d) base[k * stride + d] = q[d];
      base[k * stride + (k % dim)] += static_cast<double>(k);
    }
    std::vector<double> out(n, -1.0);
    geom::PointDistBatch(base.data(), stride, q, n, out.data());
    EXPECT_EQ(out[0], 0.0) << name;
    for (size_t k = 1; k < n; ++k) {
      EXPECT_EQ(out[k], static_cast<double>(k)) << name << " k=" << k;
    }
  });
}

// ---------------------------------------------------------------------------
// Compress kernel: forced-level identity vs a straightforward filter
// ---------------------------------------------------------------------------

std::vector<uint64_t> CompressReference(const std::vector<double>& keys,
                                        double threshold,
                                        const std::vector<uint64_t>& ids) {
  std::vector<uint64_t> kept;
  for (size_t k = 0; k < keys.size(); ++k) {
    if (keys[k] <= threshold) kept.push_back(ids[k]);
  }
  return kept;
}

void ExpectCompressMatches(const std::vector<double>& keys, double threshold,
                           const char* level_name) {
  std::vector<uint64_t> ids(keys.size());
  for (size_t k = 0; k < ids.size(); ++k) ids[k] = 1000 + k;
  std::vector<uint64_t> out(keys.size(), ~uint64_t{0});
  const size_t count = geom::CompressIdsLe(keys.data(), keys.size(), threshold,
                                           ids.data(), out.data());
  const std::vector<uint64_t> expected =
      CompressReference(keys, threshold, ids);
  ASSERT_EQ(count, expected.size()) << level_name << " n=" << keys.size();
  EXPECT_EQ(std::vector<uint64_t>(out.begin(), out.begin() + count), expected)
      << level_name << " n=" << keys.size();
}

TEST(CompressIdsLeTest, EveryMaskPatternEveryLevel) {
  // First 8 slots enumerate all 256 keep/drop patterns — every movemask /
  // __mmask8 value an 8-lane vector can see, and every 4-bit AVX2 shuffle
  // row twice over.
  ForEachUsableLevel([](geom::SimdLevel level) {
    for (int pattern = 0; pattern < 256; ++pattern) {
      std::vector<double> keys(8);
      for (int b = 0; b < 8; ++b) {
        keys[b] = ((pattern >> b) & 1) ? 0.5 : 2.0;  // keep iff bit set
      }
      ExpectCompressMatches(keys, 1.0, geom::SimdLevelName(level));
    }
  });
}

TEST(CompressIdsLeTest, RandomKeysAllLengthsEveryLevel) {
  ForEachUsableLevel([](geom::SimdLevel level) {
    Rng rng(109);
    for (size_t n = 1; n <= 36; ++n) {  // tails of every width, multi-vector
      for (int round = 0; round < 6; ++round) {
        std::vector<double> keys(n);
        for (double& k : keys) k = rng.NextUniform(0.0, 1.0);
        // Thresholds: none kept, all kept, ~half kept, exact-tie boundary.
        ExpectCompressMatches(keys, -1.0, geom::SimdLevelName(level));
        ExpectCompressMatches(keys, 2.0, geom::SimdLevelName(level));
        ExpectCompressMatches(keys, 0.5, geom::SimdLevelName(level));
        ExpectCompressMatches(keys, keys[n / 2], geom::SimdLevelName(level));
      }
    }
  });
}

// ---------------------------------------------------------------------------
// Step-1 block prune end to end: every level = scalar entry-list overload
// ---------------------------------------------------------------------------

TEST(Step1PruneSimdTest, BlockPruneMatchesScalarEveryLevel) {
  ForEachUsableLevel([](geom::SimdLevel level) {
    Rng rng(113);
    pv::QueryScratch scratch;
    for (int dim : {2, 3, 5}) {
      for (size_t n : {1u, 3u, 9u, 65u, 130u}) {
        std::vector<pv::LeafEntry> entries;
        entries.reserve(n);
        for (size_t i = 0; i < n; ++i) {
          entries.push_back(
              pv::LeafEntry{2000 + i, RandomRect(&rng, dim, 1000.0, 90.0)});
        }
        const auto block = pv::LeafBlock::FromEntries(entries, dim);
        for (int round = 0; round < 6; ++round) {
          const geom::Point q = RandomPoint(&rng, dim, 1000.0);
          EXPECT_EQ(pv::Step1PruneMinMax(block, q, &scratch),
                    pv::Step1PruneMinMax(entries, q))
              << geom::SimdLevelName(level) << " dim=" << dim << " n=" << n;
        }
      }
    }
  });
}

TEST(Step1PruneSimdTest, LevelsAgreeWithEachOtherOnSharedInput) {
  // Cross-level determinism without the scalar oracle in the loop: run the
  // identical block+query at every level and require identical bytes.
  Rng rng(127);
  const size_t n = 77;
  std::vector<pv::LeafEntry> entries;
  for (size_t i = 0; i < n; ++i) {
    entries.push_back(pv::LeafEntry{i, RandomRect(&rng, 3, 1000.0, 200.0)});
  }
  const auto block = pv::LeafBlock::FromEntries(entries, 3);
  geom::RectSoA soa(3);
  for (const auto& e : entries) soa.PushBack(e.region);

  std::vector<std::vector<uncertain::ObjectId>> pruned;
  std::vector<std::vector<double>> mins, maxs;
  ForEachUsableLevel([&](geom::SimdLevel) {
    pv::QueryScratch scratch;
    Rng probe_rng(131);  // same probes at every level
    std::vector<uncertain::ObjectId> ids;
    std::vector<double> mn(n), mx(n);
    for (int round = 0; round < 10; ++round) {
      const geom::Point q = RandomPoint(&probe_rng, 3, 1000.0);
      auto r = pv::Step1PruneMinMax(block, q, &scratch);
      ids.insert(ids.end(), r.begin(), r.end());
      geom::MinMaxDistSqBatch(soa, q, mn, mx);
    }
    pruned.push_back(std::move(ids));
    mins.push_back(mn);
    maxs.push_back(mx);
  });
  for (size_t i = 1; i < pruned.size(); ++i) {
    EXPECT_EQ(pruned[i], pruned[0]);
    EXPECT_EQ(mins[i], mins[0]);
    EXPECT_EQ(maxs[i], maxs[0]);
  }
}

}  // namespace
}  // namespace pvdb
