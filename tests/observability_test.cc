// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Observability-surface tests: the log-linear histogram (bucket round-trip,
// percentile error bounded by the 1/32 resolution, concurrent multi-shard
// recording, merge semantics), metric registry gauges and the Prometheus /
// JSON exports (golden formats), the tracer (deterministic 1-in-N sampling,
// slow-query threshold, golden JSON line), the StatsReporter lifecycle, the
// thread pool's queue instrumentation, and the engine end to end: per-stage
// histograms populated by ExecuteBatch and the sampled slow-query log.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <future>
#include <limits>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/random.h"
#include "src/common/stats.h"
#include "src/common/stats_reporter.h"
#include "src/common/trace.h"
#include "src/pv/pv_index.h"
#include "src/pv/pv_index_builder.h"
#include "src/service/query_engine.h"
#include "src/storage/pager.h"
#include "src/uncertain/datagen.h"

namespace pvdb {
namespace {

// ---------------------------------------------------------------------------
// HistogramData: bucket layout and percentile error bounds
// ---------------------------------------------------------------------------

TEST(HistogramDataTest, BucketRoundTripBoundsEveryValue) {
  std::vector<int64_t> probes;
  for (int64_t v = 0; v <= 2000; ++v) probes.push_back(v);
  for (int k = 5; k <= 62; ++k) {
    const int64_t p = int64_t{1} << k;
    probes.push_back(p - 1);
    probes.push_back(p);
    probes.push_back(p + 1);
  }
  probes.push_back(std::numeric_limits<int64_t>::max() / 2);
  for (int64_t v : probes) {
    const int idx = HistogramData::BucketIndex(v);
    ASSERT_GE(idx, 0);
    ASSERT_LT(idx, HistogramData::kBucketCount);
    const int64_t ub = HistogramData::BucketUpperBound(idx);
    // The bucket's upper bound never under-reports its members and is at
    // most 1/kSubBuckets above them (exact below kSubBuckets).
    EXPECT_GE(ub, v);
    if (v < HistogramData::kSubBuckets) {
      EXPECT_EQ(ub, v);
    } else {
      EXPECT_LE(ub, v + v / HistogramData::kSubBuckets);
    }
  }
}

TEST(HistogramDataTest, BucketIndexIsMonotoneAcrossBoundaries) {
  int prev = HistogramData::BucketIndex(0);
  for (int64_t v = 1; v < 5000; ++v) {
    const int idx = HistogramData::BucketIndex(v);
    EXPECT_GE(idx, prev) << "bucket index regressed at " << v;
    prev = idx;
  }
}

TEST(HistogramDataTest, PercentileErrorBoundedByResolution) {
  // A wide, skewed sample (three decades) — the regime the engine records
  // (nanosecond latencies). The histogram's estimate must sit within one
  // sub-bucket of the exact closest-rank percentile.
  Rng rng(7);
  HistogramData h;
  std::vector<int64_t> values;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.NextUniform(3.0, 7.0);  // log10 in [1e3, 1e7]
    const auto v = static_cast<int64_t>(std::pow(10.0, u));
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  for (double p : {50.0, 90.0, 99.0, 99.9}) {
    const auto rank = static_cast<size_t>(
        std::ceil(p / 100.0 * static_cast<double>(values.size())));
    const int64_t exact = values[rank - 1];
    const int64_t got = h.Percentile(p);
    EXPECT_GE(got, exact) << "p" << p;
    EXPECT_LE(got, exact + exact / HistogramData::kSubBuckets + 1)
        << "p" << p;
  }
}

TEST(HistogramDataTest, SmallValuesAreExact) {
  HistogramData h;
  for (int64_t v = 0; v < HistogramData::kSubBuckets; ++v) h.Record(v);
  // Every value below kSubBuckets has its own bucket: percentiles are exact
  // closest-rank values, not approximations.
  const auto n = static_cast<double>(HistogramData::kSubBuckets);
  for (int64_t v = 1; v < HistogramData::kSubBuckets; ++v) {
    // Mid-rank p: ceil(p/100 * n) == v + 1 with slack against FP rounding.
    const double p = 100.0 * (static_cast<double>(v) + 0.5) / n;
    EXPECT_EQ(h.Percentile(p), v);
  }
}

TEST(HistogramDataTest, EdgeCasesAndClamping) {
  HistogramData empty;
  EXPECT_EQ(empty.Percentile(50.0), 0);
  EXPECT_EQ(empty.count(), 0);
  EXPECT_EQ(empty.min(), 0);
  EXPECT_EQ(empty.max(), 0);
  EXPECT_EQ(empty.mean(), 0.0);

  HistogramData h;
  h.Record(-5);  // negatives clamp to 0
  h.Record(1000);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 1000);
  EXPECT_EQ(h.Percentile(0.0), 0);
  // The observed max clamps the report: the bucket holding 1000 spans up to
  // 1023, but no recorded value exceeds 1000.
  EXPECT_EQ(h.Percentile(100.0), 1000);
  EXPECT_LE(h.Percentile(99.0), 1000);
}

TEST(HistogramDataTest, MergeMatchesCombinedStream) {
  Rng rng(11);
  HistogramData a;
  HistogramData b;
  HistogramData combined;
  for (int i = 0; i < 4000; ++i) {
    const auto v = static_cast<int64_t>(rng.NextUniform(0, 1e6));
    (i % 2 == 0 ? a : b).Record(v);
    combined.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.sum(), combined.sum());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  for (double p : {1.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9}) {
    EXPECT_EQ(a.Percentile(p), combined.Percentile(p)) << "p" << p;
  }
}

// ---------------------------------------------------------------------------
// Histogram: concurrent sharded recording
// ---------------------------------------------------------------------------

TEST(HistogramTest, ConcurrentRecordersLoseNothing) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(t * kPerThread + i + 1);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const HistogramData data = h.Snapshot();
  const int64_t n = int64_t{kThreads} * kPerThread;
  EXPECT_EQ(data.count(), n);
  EXPECT_EQ(data.sum(), n * (n + 1) / 2);  // values are exactly 1..n
  EXPECT_EQ(data.min(), 1);
  EXPECT_EQ(data.max(), n);
  // Uniform 1..n: p50 within one sub-bucket of n/2.
  const int64_t p50 = data.Percentile(50.0);
  EXPECT_GE(p50, n / 2);
  EXPECT_LE(p50, n / 2 + n / 2 / HistogramData::kSubBuckets + 1);
}

TEST(HistogramTest, SnapshotsFromDistinctHistogramsMerge) {
  Histogram h1;
  Histogram h2;
  std::thread t1([&h1] {
    for (int i = 1; i <= 1000; ++i) h1.Record(i);
  });
  std::thread t2([&h2] {
    for (int i = 1001; i <= 2000; ++i) h2.Record(i);
  });
  t1.join();
  t2.join();
  HistogramData merged = h1.Snapshot();
  merged.Merge(h2.Snapshot());
  EXPECT_EQ(merged.count(), 2000);
  EXPECT_EQ(merged.min(), 1);
  EXPECT_EQ(merged.max(), 2000);
  EXPECT_EQ(merged.sum(), int64_t{2000} * 2001 / 2);
}

TEST(HistogramTest, ResetClearsEveryShard) {
  Histogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < 100; ++i) h.Record(42);
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_EQ(h.Snapshot().count(), 400);
  h.Reset();
  EXPECT_EQ(h.Snapshot().count(), 0);
  EXPECT_EQ(h.Snapshot().sum(), 0);
}

// ---------------------------------------------------------------------------
// MetricRegistry: gauges and export goldens
// ---------------------------------------------------------------------------

TEST(MetricRegistryGaugeTest, GaugeSetAddAndGet) {
  MetricRegistry reg;
  MetricRegistry::Gauge* g = reg.RegisterGauge("engine.snapshot.generation");
  g->Set(3);
  EXPECT_EQ(reg.Get("engine.snapshot.generation"), 3);
  g->Add(2);
  EXPECT_EQ(reg.Get("engine.snapshot.generation"), 5);
  EXPECT_EQ(reg.RegisterGauge("engine.snapshot.generation"), g);
  reg.Reset();
  EXPECT_EQ(reg.Get("engine.snapshot.generation"), 0);
}

TEST(MetricRegistryGaugeTest, CallbackGaugeSamplesAtReadTime) {
  MetricRegistry reg;
  std::atomic<int64_t> depth{7};
  reg.RegisterCallbackGauge("pool.queue_depth",
                            [&depth] { return depth.load(); });
  EXPECT_EQ(reg.Get("pool.queue_depth"), 7);
  depth.store(11);
  EXPECT_EQ(reg.Get("pool.queue_depth"), 11);
  // Callback gauges are computed, not stored: Reset leaves them intact.
  reg.Reset();
  EXPECT_EQ(reg.Get("pool.queue_depth"), 11);
}

TEST(MetricRegistryExportTest, PrometheusTextGolden) {
  MetricRegistry reg;
  reg.Register("pager.page_reads")->Increment(3);
  reg.RegisterGauge("engine.snapshot.generation")->Set(2);
  reg.RegisterCallbackGauge("engine.pool.queue_depth", [] { return 4; });
  Histogram* h = reg.RegisterHistogram("engine.latency_ns");
  h->Record(100);
  h->Record(200);
  h->Record(300);

  const std::string text = reg.ExportPrometheusText();
  EXPECT_EQ(text,
            "# TYPE pvdb_pager_page_reads counter\n"
            "pvdb_pager_page_reads 3\n"
            "# TYPE pvdb_engine_snapshot_generation gauge\n"
            "pvdb_engine_snapshot_generation 2\n"
            "# TYPE pvdb_engine_pool_queue_depth gauge\n"
            "pvdb_engine_pool_queue_depth 4\n"
            "# TYPE pvdb_engine_latency_ns summary\n"
            "pvdb_engine_latency_ns{quantile=\"0.5\"} 203\n"
            "pvdb_engine_latency_ns{quantile=\"0.9\"} 300\n"
            "pvdb_engine_latency_ns{quantile=\"0.99\"} 300\n"
            "pvdb_engine_latency_ns{quantile=\"0.999\"} 300\n"
            "pvdb_engine_latency_ns_sum 600\n"
            "pvdb_engine_latency_ns_count 3\n");
}

TEST(MetricRegistryExportTest, JsonGolden) {
  MetricRegistry reg;
  reg.Register("engine.queries")->Increment(5);
  reg.RegisterGauge("engine.snapshot.generation")->Set(1);
  Histogram* h = reg.RegisterHistogram("engine.latency_ns");
  h->Record(100);
  h->Record(200);
  h->Record(300);

  const std::string json = reg.ExportJson();
  EXPECT_EQ(json,
            "{\"counters\":{\"engine.queries\":5},"
            "\"gauges\":{\"engine.snapshot.generation\":1},"
            "\"histograms\":{\"engine.latency_ns\":{\"count\":3,"
            "\"sum\":600,\"min\":100,\"max\":300,\"mean\":200.00,"
            "\"p50\":203,\"p90\":300,\"p99\":300,\"p999\":300}}}");
}

TEST(MetricRegistryExportTest, EmptyRegistryExportsValidShapes) {
  MetricRegistry reg;
  EXPECT_EQ(reg.ExportPrometheusText(), "");
  EXPECT_EQ(reg.ExportJson(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
}

// ---------------------------------------------------------------------------
// Tracer: sampling determinism, slow threshold, golden line
// ---------------------------------------------------------------------------

TEST(TracerTest, FormatLineGolden) {
  QueryTraceInfo info;
  info.seq = 7;
  info.latency_ms = 1.5;
  info.stages.ns = {1000, 2000, 3000, 4000, 5000};
  info.cache_hit = true;
  info.ok = true;
  info.results = 2;
  info.backend = "snapshot";
  info.kind = "topk";
  EXPECT_EQ(Tracer::FormatLine(info, /*sampled=*/true, /*slow=*/false),
            "{\"type\":\"query_trace\",\"seq\":7,\"sampled\":true,"
            "\"slow\":false,\"backend\":\"snapshot\",\"kind\":\"topk\","
            "\"ok\":true,"
            "\"cache_hit\":true,\"results\":2,\"latency_ms\":1.5000,"
            "\"stages_us\":{\"plan\":1.0,\"leaf_cache\":2.0,"
            "\"step1_prune\":3.0,\"step2\":4.0,\"merge\":5.0}}");
}

TEST(TracerTest, SamplingIsDeterministicOneInN) {
  TraceOptions opts;
  opts.enabled = true;
  opts.sample_every_n = 4;
  std::vector<std::string> lines;
  opts.sink = [&lines](const std::string& line) { lines.push_back(line); };
  Tracer tracer(opts);
  QueryTraceInfo info;
  for (uint64_t i = 0; i < 12; ++i) {
    info.seq = i;
    tracer.MaybeEmit(info);
  }
  // The k-th completed trace is emitted iff k % 4 == 0: exactly 0, 4, 8.
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("\"seq\":0,"), std::string::npos);
  EXPECT_NE(lines[1].find("\"seq\":4,"), std::string::npos);
  EXPECT_NE(lines[2].find("\"seq\":8,"), std::string::npos);
  EXPECT_EQ(tracer.emitted(), 3);
  EXPECT_EQ(tracer.slow_count(), 0);
}

TEST(TracerTest, SlowQueriesBypassSampling) {
  TraceOptions opts;
  opts.enabled = true;
  opts.sample_every_n = 1000000;  // effectively only the very first sample
  opts.slow_query_ms = 5.0;
  std::vector<std::string> lines;
  opts.sink = [&lines](const std::string& line) { lines.push_back(line); };
  Tracer tracer(opts);
  QueryTraceInfo fast;
  fast.latency_ms = 1.0;
  QueryTraceInfo slow;
  slow.latency_ms = 9.0;
  tracer.MaybeEmit(fast);  // k=0: sampled
  tracer.MaybeEmit(fast);  // dropped
  tracer.MaybeEmit(slow);  // slow: emitted despite sampling
  tracer.MaybeEmit(fast);  // dropped
  tracer.MaybeEmit(slow);  // slow: emitted
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[1].find("\"slow\":true"), std::string::npos);
  EXPECT_NE(lines[2].find("\"slow\":true"), std::string::npos);
  EXPECT_EQ(tracer.slow_count(), 2);
}

TEST(TracerTest, DisabledTracerEmitsNothing) {
  TraceOptions opts;  // enabled = false
  opts.sink = [](const std::string&) { FAIL() << "must not emit"; };
  Tracer tracer(opts);
  QueryTraceInfo info;
  info.latency_ms = 1e9;  // would be "slow" under any threshold
  EXPECT_FALSE(tracer.MaybeEmit(info));
  EXPECT_EQ(tracer.emitted(), 0);
}

TEST(ScopedStageTimerTest, NullSinkReadsNoClockAndRecordsNothing) {
  StageTimings timings;
  {
    ScopedStageTimer t(nullptr, QueryStage::kStep2);
  }
  { ScopedStageTimer t(&timings, QueryStage::kStep2); }
  // The active timer recorded a (tiny, possibly zero) non-negative span.
  EXPECT_GE(timings.ns[static_cast<size_t>(QueryStage::kStep2)], 0);
  EXPECT_EQ(timings.ns[static_cast<size_t>(QueryStage::kPlan)], 0);
}

TEST(StageTimingsTest, MergeAndTotal) {
  StageTimings a;
  a.Add(QueryStage::kPlan, 10);
  a.Add(QueryStage::kStep2, 30);
  StageTimings b;
  b.Add(QueryStage::kStep2, 5);
  b.Add(QueryStage::kMerge, 7);
  a.MergeFrom(b);
  EXPECT_EQ(a.ns[static_cast<size_t>(QueryStage::kPlan)], 10);
  EXPECT_EQ(a.ns[static_cast<size_t>(QueryStage::kStep2)], 35);
  EXPECT_EQ(a.ns[static_cast<size_t>(QueryStage::kMerge)], 7);
  EXPECT_EQ(a.total_ns(), 52);
}

// ---------------------------------------------------------------------------
// StatsReporter
// ---------------------------------------------------------------------------

TEST(StatsReporterTest, StopFlushesOneFinalReport) {
  MetricRegistry reg;
  reg.Register("engine.queries")->Increment(9);
  StatsReporterOptions opts;
  opts.interval = std::chrono::milliseconds(60000);  // never fires on time
  opts.format = StatsReporterOptions::Format::kJson;
  std::mutex mu;
  std::vector<std::string> reports;
  opts.sink = [&](const std::string& body) {
    std::lock_guard<std::mutex> lock(mu);
    reports.push_back(body);
  };
  StatsReporter reporter(&reg, opts);
  reporter.Start();
  reporter.Stop();
  ASSERT_GE(reports.size(), 1u);
  EXPECT_NE(reports.back().find("\"engine.queries\":9"), std::string::npos);
  EXPECT_EQ(reporter.reports(), static_cast<int64_t>(reports.size()));
}

TEST(StatsReporterTest, PeriodicReportsCarryCurrentValues) {
  MetricRegistry reg;
  MetricRegistry::Counter* c = reg.Register("engine.queries");
  StatsReporterOptions opts;
  opts.interval = std::chrono::milliseconds(5);
  std::mutex mu;
  std::vector<std::string> reports;
  opts.sink = [&](const std::string& body) {
    std::lock_guard<std::mutex> lock(mu);
    reports.push_back(body);
  };
  StatsReporter reporter(&reg, opts);
  reporter.Start();
  c->Increment(42);
  // Wait until at least two periodic reports landed (bounded spin).
  for (int i = 0; i < 1000 && reporter.reports() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  reporter.Stop();
  ASSERT_GE(reports.size(), 2u);
  EXPECT_NE(reports.back().find("\"engine.queries\":42"), std::string::npos);
}

// ---------------------------------------------------------------------------
// ThreadPool queue instrumentation
// ---------------------------------------------------------------------------

TEST(ThreadPoolObservabilityTest, QueueWaitRecordedPerTask) {
  service::ThreadPool pool(2);
  Histogram wait;
  pool.SetQueueWaitHistogram(&wait);
  constexpr int kTasks = 64;
  std::atomic<int> done{0};
  std::promise<void> all_done;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      if (done.fetch_add(1) + 1 == kTasks) all_done.set_value();
    });
  }
  all_done.get_future().wait();
  const HistogramData data = wait.Snapshot();
  EXPECT_EQ(data.count(), kTasks);
  EXPECT_GE(data.min(), 0);
  EXPECT_EQ(pool.QueueDepth(), 0u);
}

TEST(ThreadPoolObservabilityTest, NoHistogramMeansNoRecording) {
  service::ThreadPool pool(2);
  std::promise<void> ran;
  pool.Submit([&ran] { ran.set_value(); });
  ran.get_future().wait();
  EXPECT_EQ(pool.QueueDepth(), 0u);
}

// ---------------------------------------------------------------------------
// QueryEngine end to end: stage histograms, traces, export surface
// ---------------------------------------------------------------------------

/// A small PV-served world (the paper's primary backend) for engine-level
/// observability assertions.
struct ObsWorld {
  ObsWorld() {
    uncertain::SyntheticOptions synth;
    synth.dim = 2;
    synth.count = 300;
    synth.samples_per_object = 20;
    synth.max_region_extent = 150;
    synth.domain_hi = 1000;
    synth.seed = 17;
    db = std::make_unique<uncertain::Dataset>(
        uncertain::GenerateSynthetic(synth));
    pv = pv::PvIndex::Build(*db, &pager, {}).value();
  }

  service::EngineBackends Backends() {
    service::EngineBackends b;
    b.pv = pv.get();
    return b;
  }

  std::vector<geom::Point> Queries(size_t n, uint64_t seed) const {
    Rng rng(seed);
    std::vector<geom::Point> out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      out.push_back(
          geom::Point{rng.NextUniform(0, 1000), rng.NextUniform(0, 1000)});
    }
    return out;
  }

  std::unique_ptr<uncertain::Dataset> db;
  storage::InMemoryPager pager;
  std::unique_ptr<pv::PvIndex> pv;
};

TEST(QueryEngineObservabilityTest, BatchPopulatesStageHistograms) {
  ObsWorld world;
  service::QueryEngineOptions options;
  options.threads = 4;
  auto engine =
      service::QueryEngine::Create(world.db.get(), world.Backends(), options)
          .value();

  const auto queries = world.Queries(64, 5);
  service::ServiceStats stats;
  const auto answers =
      engine->ExecuteBatch(service::PnnRequests(queries), &stats);
  ASSERT_EQ(answers.size(), queries.size());

  // Counters: every query accounted, none failed.
  EXPECT_EQ(engine->metrics().Get("engine.queries"), 64);
  EXPECT_EQ(engine->metrics().Get("engine.query_failures"), 0);
  EXPECT_EQ(engine->metrics().Get("engine.batches"), 1);

  // Per-stage histograms: one record per query per stage, and real time
  // attributed to Step 2 (the dominant stage on this workload).
  const std::string json = engine->metrics().ExportJson();
  for (const char* stage :
       {"plan", "leaf_cache", "step1_prune", "step2", "merge"}) {
    const std::string key =
        std::string("\"engine.stage.") + stage + "_ns\":{\"count\":64";
    EXPECT_NE(json.find(key), std::string::npos)
        << "missing " << key << " in " << json;
  }
  // Batch-level stage attribution mirrors the histograms.
  EXPECT_GT(stats.stage_ms[static_cast<size_t>(QueryStage::kStep2)], 0.0);
  // Per-answer attribution: some stage time on every successful answer.
  for (const auto& a : answers) {
    ASSERT_TRUE(a.status.ok());
    int64_t total = 0;
    for (int64_t ns : a.stage_ns) total += ns;
    EXPECT_GT(total, 0);
  }
  // Percentiles come from the histogram now: present, ordered, positive.
  EXPECT_GT(stats.p50_latency_ms, 0.0);
  EXPECT_LE(stats.p50_latency_ms, stats.p99_latency_ms);
  EXPECT_LE(stats.p99_latency_ms,
            stats.latency_ms.max() * (1.0 + 1.0 / 32.0) + 1e-3);
}

TEST(QueryEngineObservabilityTest, StageTimingOffRecordsNothing) {
  ObsWorld world;
  service::QueryEngineOptions options;
  options.threads = 2;
  options.stage_timing = false;
  auto engine =
      service::QueryEngine::Create(world.db.get(), world.Backends(), options)
          .value();
  const auto queries = world.Queries(32, 6);
  const auto answers = engine->ExecuteBatch(service::PnnRequests(queries));
  for (const auto& a : answers) {
    for (int64_t ns : a.stage_ns) EXPECT_EQ(ns, 0);
  }
  // The end-to-end latency histogram still records; stage histograms stay
  // empty.
  const std::string json = engine->metrics().ExportJson();
  EXPECT_NE(json.find("\"engine.latency_ns\":{\"count\":32"),
            std::string::npos);
  EXPECT_NE(json.find("\"engine.stage.step2_ns\":{\"count\":0"),
            std::string::npos);
}

TEST(QueryEngineObservabilityTest, TraceSamplingDeterministicAcrossBatch) {
  ObsWorld world;
  service::QueryEngineOptions options;
  options.threads = 4;
  options.trace.enabled = true;
  options.trace.sample_every_n = 8;
  std::mutex mu;
  std::vector<std::string> lines;
  options.trace.sink = [&](const std::string& line) {
    std::lock_guard<std::mutex> lock(mu);
    lines.push_back(line);
  };
  auto engine =
      service::QueryEngine::Create(world.db.get(), world.Backends(), options)
          .value();
  const auto queries = world.Queries(64, 7);
  (void)engine->ExecuteBatch(service::PnnRequests(queries));
  // The grouped batch records its answers in one deterministic pass, so a
  // 64-query batch with 1-in-8 sampling emits exactly 8 lines, seq 0,8,...
  ASSERT_EQ(lines.size(), 8u);
  for (size_t i = 0; i < lines.size(); ++i) {
    EXPECT_NE(lines[i].find("\"type\":\"query_trace\""), std::string::npos);
    EXPECT_NE(lines[i].find("\"stages_us\":{"), std::string::npos);
    const std::string seq = "\"seq\":" + std::to_string(i * 8) + ",";
    EXPECT_NE(lines[i].find(seq), std::string::npos) << lines[i];
  }
  EXPECT_EQ(engine->tracer().emitted(), 8);
}

TEST(QueryEngineObservabilityTest, SlowQueryLogCatchesEveryQuery) {
  ObsWorld world;
  service::QueryEngineOptions options;
  options.threads = 2;
  options.trace.enabled = true;
  options.trace.sample_every_n = 1 << 30;  // sampling effectively off
  options.trace.slow_query_ms = 0.0;       // every query is "slow"
  std::mutex mu;
  int64_t slow_lines = 0;
  options.trace.sink = [&](const std::string& line) {
    std::lock_guard<std::mutex> lock(mu);
    if (line.find("\"slow\":true") != std::string::npos) ++slow_lines;
  };
  auto engine =
      service::QueryEngine::Create(world.db.get(), world.Backends(), options)
          .value();
  const auto queries = world.Queries(16, 8);
  (void)engine->ExecuteBatch(service::PnnRequests(queries));
  EXPECT_EQ(slow_lines, 16);
  EXPECT_EQ(engine->tracer().slow_count(), 16);
}

TEST(QueryEngineObservabilityTest, PrometheusExportCoversEngineSurface) {
  ObsWorld world;
  service::QueryEngineOptions options;
  options.threads = 2;
  auto engine =
      service::QueryEngine::Create(world.db.get(), world.Backends(), options)
          .value();
  (void)engine->ExecuteBatch(service::PnnRequests(world.Queries(16, 9)));
  const std::string text = engine->metrics().ExportPrometheusText();
  for (const char* needle : {
           "# TYPE pvdb_engine_queries counter",
           "# TYPE pvdb_engine_latency_ns summary",
           "pvdb_engine_latency_ns{quantile=\"0.99\"}",
           "pvdb_engine_latency_ns_count 16",
           "# TYPE pvdb_engine_stage_step2_ns summary",
           "# TYPE pvdb_engine_pool_queue_depth gauge",
           "# TYPE pvdb_engine_cache_hits gauge",
           "# TYPE pvdb_engine_snapshot_generation gauge",
       }) {
    EXPECT_NE(text.find(needle), std::string::npos)
        << "missing \"" << needle << "\" in:\n"
        << text;
  }
}

TEST(QueryEngineObservabilityTest, SnapshotGenerationAndAgeGauges) {
  uncertain::SyntheticOptions synth;
  synth.dim = 2;
  synth.count = 200;
  synth.samples_per_object = 20;
  synth.max_region_extent = 150;
  synth.domain_hi = 1000;
  synth.seed = 23;
  uncertain::Dataset db = uncertain::GenerateSynthetic(synth);
  auto builder = pv::PvIndexBuilder::Build(db).value();
  auto snap_a = builder->Seal().value();
  auto snap_b = builder->Seal().value();

  service::QueryEngineOptions options;
  options.threads = 2;
  auto engine =
      service::QueryEngine::CreateFromSnapshot(snap_a, options).value();
  EXPECT_EQ(engine->metrics().Get("engine.snapshot.generation"), 0);
  EXPECT_GE(engine->metrics().Get("engine.snapshot.age_seconds"), 0);
  ASSERT_TRUE(engine->AdoptSnapshot(snap_b).ok());
  EXPECT_EQ(engine->metrics().Get("engine.snapshot.generation"), 1);
}

TEST(QueryEngineObservabilityTest, InvalidTraceOptionsRejected) {
  service::QueryEngineOptions options;
  options.trace.enabled = true;
  options.trace.slow_query_ms = -1.0;
  EXPECT_FALSE(service::ValidateQueryEngineOptions(options).ok());
  options.trace.slow_query_ms = std::nan("");
  EXPECT_FALSE(service::ValidateQueryEngineOptions(options).ok());
  options.trace.slow_query_ms = 0.0;
  EXPECT_TRUE(service::ValidateQueryEngineOptions(options).ok());
}

}  // namespace
}  // namespace pvdb
