// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// PV-index correctness (Section VI-A): Step-1 answer sets must equal the
// linear-scan oracle (and hence the R-tree baseline) on every query; every
// query point must see at least one candidate (the PV-cells of a non-empty
// database cover the domain); stored UBRs must contain their objects'
// uncertainty regions.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>

#include "src/common/random.h"
#include "src/eval/workload.h"
#include "src/pv/pnnq.h"
#include "src/pv/pv_index.h"
#include "src/rtree/rtree_pnn.h"
#include "src/storage/pager.h"
#include "src/uncertain/datagen.h"

namespace pvdb::pv {
namespace {

struct IndexFixture {
  IndexFixture(int dim, size_t count, uint64_t seed,
               PvIndexOptions options = PvIndexOptions()) {
    uncertain::SyntheticOptions synth;
    synth.dim = dim;
    synth.count = count;
    synth.samples_per_object = 8;
    synth.seed = seed;
    db = std::make_unique<uncertain::Dataset>(
        uncertain::GenerateSynthetic(synth));
    pager = std::make_unique<storage::InMemoryPager>();
    auto built = PvIndex::Build(*db, pager.get(), options, &stats);
    PVDB_CHECK(built.ok());
    index = std::move(built).value();
  }

  std::unique_ptr<uncertain::Dataset> db;
  std::unique_ptr<storage::InMemoryPager> pager;
  std::unique_ptr<PvIndex> index;
  BuildStats stats;
};

std::vector<uncertain::ObjectId> SortedIds(
    std::vector<uncertain::ObjectId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

class PvIndexDimTest : public ::testing::TestWithParam<int> {};

TEST_P(PvIndexDimTest, Step1MatchesBruteForceOracle) {
  const int dim = GetParam();
  IndexFixture fx(dim, 400, /*seed=*/1000 + static_cast<uint64_t>(dim));
  Rng rng(17);
  for (int q = 0; q < 100; ++q) {
    geom::Point query(dim);
    for (int i = 0; i < dim; ++i) {
      query[i] = rng.NextUniform(0, 10000);
    }
    auto got = fx.index->QueryPossibleNN(query);
    ASSERT_TRUE(got.ok());
    const auto expected = Step1BruteForce(*fx.db, query);
    EXPECT_EQ(SortedIds(got.value()), expected)
        << "query " << query.ToString();
  }
}

TEST_P(PvIndexDimTest, Step1MatchesRTreeBaseline) {
  const int dim = GetParam();
  IndexFixture fx(dim, 300, /*seed=*/2000 + static_cast<uint64_t>(dim));
  const rtree::RStarTree region_tree = eval::BuildRegionTree(*fx.db);
  Rng rng(18);
  for (int q = 0; q < 60; ++q) {
    geom::Point query(dim);
    for (int i = 0; i < dim; ++i) query[i] = rng.NextUniform(0, 10000);
    auto pv_ids = fx.index->QueryPossibleNN(query);
    ASSERT_TRUE(pv_ids.ok());
    EXPECT_EQ(SortedIds(pv_ids.value()),
              rtree::PnnStep1BranchAndPrune(region_tree, query));
  }
}

TEST_P(PvIndexDimTest, EveryQueryPointHasACandidate) {
  // PV-cells tile the domain: every point has some possible NN, so its leaf
  // must hold at least one entry.
  const int dim = GetParam();
  IndexFixture fx(dim, 150, /*seed=*/3000 + static_cast<uint64_t>(dim));
  Rng rng(19);
  for (int q = 0; q < 200; ++q) {
    geom::Point query(dim);
    for (int i = 0; i < dim; ++i) query[i] = rng.NextUniform(0, 10000);
    auto got = fx.index->QueryPossibleNN(query);
    ASSERT_TRUE(got.ok());
    EXPECT_GE(got.value().size(), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, PvIndexDimTest, ::testing::Values(2, 3, 4));

TEST(PvIndexTest, StoredUbrsContainUncertaintyRegions) {
  IndexFixture fx(3, 200, /*seed=*/5);
  for (const auto& o : fx.db->objects()) {
    auto ubr = fx.index->GetUbr(o.id());
    ASSERT_TRUE(ubr.ok());
    EXPECT_TRUE(ubr.value().ContainsRect(o.region()))
        << "Lemma 5: u(o) inside B(o)";
    EXPECT_TRUE(fx.db->domain().ContainsRect(ubr.value()));
  }
}

TEST(PvIndexTest, SecondaryRecordsRoundTrip) {
  IndexFixture fx(2, 100, /*seed=*/6);
  for (size_t i = 0; i < 10; ++i) {
    const auto& o = fx.db->objects()[i * 9];
    auto back = fx.index->GetObject(o.id());
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value().region(), o.region());
    EXPECT_EQ(back.value().pdf().size(), o.pdf().size());
  }
}

TEST(PvIndexTest, BuildStatsPopulated) {
  IndexFixture fx(3, 150, /*seed=*/7);
  EXPECT_EQ(fx.stats.cset_size.count(), 150);
  EXPECT_GT(fx.stats.cset_size.mean(), 0.0);
  EXPECT_GT(fx.stats.compute_ubr_ms, 0.0);
  EXPECT_GT(fx.stats.total_ms, 0.0);
  EXPECT_GT(fx.stats.se.slab_tests, 0);
  EXPECT_EQ(fx.stats.se.slab_tests,
            fx.stats.se.shrinks + fx.stats.se.expands);
}

TEST(PvIndexTest, QueryChargesIo) {
  IndexFixture fx(3, 400, /*seed=*/8);
  auto& metrics = fx.pager->metrics();
  const int64_t before = metrics.Get(storage::PagerCounters::kReads);
  geom::Point q{5000, 5000, 5000};
  ASSERT_TRUE(fx.index->QueryPossibleNN(q).ok());
  EXPECT_GT(metrics.Get(storage::PagerCounters::kReads), before)
      << "leaf pages must be read through the pager";
}

TEST(PvIndexTest, FsStrategyAlsoCorrect) {
  PvIndexOptions options;
  options.cset.strategy = CSetStrategy::kFixed;
  options.cset.k = 60;
  IndexFixture fx(3, 250, /*seed=*/9, options);
  Rng rng(20);
  for (int q = 0; q < 50; ++q) {
    geom::Point query(3);
    for (int i = 0; i < 3; ++i) query[i] = rng.NextUniform(0, 10000);
    auto got = fx.index->QueryPossibleNN(query);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(SortedIds(got.value()), Step1BruteForce(*fx.db, query));
  }
}

TEST(PvIndexTest, CoarseDeltaStillCorrectJustSlower) {
  // A huge Δ gives loose UBRs: answers stay exact (minmax pruning removes
  // the extra candidates), only candidate counts grow.
  PvIndexOptions loose;
  loose.se.delta = 2000.0;
  IndexFixture fx_loose(2, 200, /*seed=*/10, loose);
  PvIndexOptions tight;
  tight.se.delta = 1.0;
  IndexFixture fx_tight(2, 200, /*seed=*/10, tight);

  Rng rng(21);
  double loose_candidates = 0, tight_candidates = 0;
  for (int q = 0; q < 50; ++q) {
    geom::Point query(2);
    for (int i = 0; i < 2; ++i) query[i] = rng.NextUniform(0, 10000);
    auto a = fx_loose.index->QueryPossibleNN(query);
    auto b = fx_tight.index->QueryPossibleNN(query);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    const auto oracle = Step1BruteForce(*fx_loose.db, query);
    EXPECT_EQ(SortedIds(a.value()), oracle);
    EXPECT_EQ(SortedIds(b.value()), oracle);
    loose_candidates += static_cast<double>(a.value().size());
    tight_candidates += static_cast<double>(b.value().size());
  }
  // Equal answers; the only difference can be leaf occupancy/IO, which the
  // benchmarks measure. (Candidate sets after pruning are identical.)
  EXPECT_DOUBLE_EQ(loose_candidates, tight_candidates);
}

TEST(PvIndexTest, MortonBulkLoadGivesIdenticalAnswers) {
  PvIndexOptions morton;
  morton.build_order = BuildOrder::kMorton;
  IndexFixture fx_bulk(3, 300, /*seed=*/44, morton);
  IndexFixture fx_plain(3, 300, /*seed=*/44);
  Rng rng(45);
  for (int q = 0; q < 60; ++q) {
    geom::Point query(3);
    for (int i = 0; i < 3; ++i) query[i] = rng.NextUniform(0, 10000);
    auto a = fx_bulk.index->QueryPossibleNN(query);
    auto b = fx_plain.index->QueryPossibleNN(query);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(SortedIds(a.value()), SortedIds(b.value()));
    EXPECT_EQ(SortedIds(a.value()), Step1BruteForce(*fx_bulk.db, query));
  }
}

TEST(PvIndexTest, BulkPrimaryGivesIdenticalAnswers) {
  PvIndexOptions bulk;
  bulk.bulk_primary = true;
  IndexFixture fx_bulk(3, 300, /*seed=*/46, bulk);
  IndexFixture fx_plain(3, 300, /*seed=*/46);
  Rng rng(47);
  for (int q = 0; q < 60; ++q) {
    geom::Point query(3);
    for (int i = 0; i < 3; ++i) query[i] = rng.NextUniform(0, 10000);
    auto a = fx_bulk.index->QueryPossibleNN(query);
    auto b = fx_plain.index->QueryPossibleNN(query);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(SortedIds(a.value()), SortedIds(b.value()));
  }
}

TEST(PvIndexTest, BulkPrimaryReducesPrimaryPageWrites) {
  // The bulk-loading ablation's headline property: batched leaf writes cut
  // primary-index page writes by roughly the page capacity factor.
  PvIndexOptions bulk;
  bulk.bulk_primary = true;
  IndexFixture fx_bulk(2, 1500, /*seed=*/48, bulk);
  IndexFixture fx_plain(2, 1500, /*seed=*/48);
  EXPECT_LT(fx_bulk.stats.primary_page_writes * 5,
            fx_plain.stats.primary_page_writes)
      << "bulk=" << fx_bulk.stats.primary_page_writes
      << " incremental=" << fx_plain.stats.primary_page_writes;
}

TEST(PvIndexTest, BulkPrimaryIndexSupportsUpdatesAfterwards) {
  PvIndexOptions bulk;
  bulk.bulk_primary = true;
  IndexFixture fx(2, 150, /*seed=*/49, bulk);
  // Delete then insert through the incremental path; answers stay exact.
  Rng rng(50);
  auto ids = fx.db->Ids();
  const auto victim = ids[5];
  const uncertain::UncertainObject removed = *fx.db->Find(victim);
  ASSERT_TRUE(fx.db->Remove(victim).ok());
  ASSERT_TRUE(fx.index->DeleteObject(*fx.db, removed).ok());
  const auto id = static_cast<uncertain::ObjectId>(777);
  ASSERT_TRUE(fx.db
                  ->Add(uncertain::UncertainObject::UniformSampled(
                      id, geom::Rect::Cube(2, 4000, 4020), 8, &rng))
                  .ok());
  ASSERT_TRUE(fx.index->InsertObject(*fx.db, id).ok());
  for (int q = 0; q < 40; ++q) {
    geom::Point query{rng.NextUniform(0, 10000), rng.NextUniform(0, 10000)};
    auto got = fx.index->QueryPossibleNN(query);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(SortedIds(got.value()), Step1BruteForce(*fx.db, query));
  }
}

TEST(PvIndexTest, SingleObjectDatabase) {
  IndexFixture fx(2, 1, /*seed=*/11);
  auto got = fx.index->QueryPossibleNN(geom::Point{1.0, 9999.0});
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got.value().size(), 1u);
  auto ubr = fx.index->GetUbr(fx.db->objects()[0].id());
  ASSERT_TRUE(ubr.ok());
  EXPECT_EQ(ubr.value(), fx.db->domain())
      << "a lone object's PV-cell is the whole domain";
}

TEST(PvIndexTest, ListenerRegistrationIsThreadSafe) {
  // Add/RemoveUpdateListener are internally synchronized: hammering them
  // from several threads must neither corrupt the listener list nor lose a
  // registration that survives to the next mutation's notification.
  IndexFixture fx(2, 50, /*seed=*/31);
  std::atomic<int> churn_fires{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        const int id = fx.index->AddUpdateListener(
            [&churn_fires] { churn_fires.fetch_add(1); });
        if ((i + t) % 2 == 0) fx.index->RemoveUpdateListener(id);
      }
    });
  }
  for (auto& t : threads) t.join();

  // A listener registered after the churn still fires exactly once per
  // mutation.
  std::atomic<int> fires{0};
  const int id = fx.index->AddUpdateListener([&fires] { fires.fetch_add(1); });
  const uncertain::UncertainObject removed = fx.db->objects()[0];
  ASSERT_TRUE(fx.db->Remove(removed.id()).ok());
  ASSERT_TRUE(fx.index->DeleteObject(*fx.db, removed).ok());
  EXPECT_EQ(fires.load(), 1);
  fx.index->RemoveUpdateListener(id);
  // Each thread removes the (i + t) % 2 == 0 half of its 200 registrations,
  // so exactly 4 * 100 churn listeners survive and fire once on the delete.
  EXPECT_EQ(churn_fires.load(), 400);
}

}  // namespace
}  // namespace pvdb::pv
