// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Sharding subsystem tests: partition-plan invariants (single ownership,
// ghost replication of boundary-straddlers, bbox coverage), shard-map
// manifest corruption hardening (truncation, bad CRC, foreign magic,
// future version, trailing bytes — descriptive Status, never a crash),
// option validation, and the PR's acceptance property: a K-shard router
// over randomized datasets — including wide, boundary-straddling UBRs —
// answers BIT-IDENTICAL to one canonical-order engine over the union
// dataset. Degradation: an unreachable shard poisons exactly the queries
// that need it with kUnavailable and never aborts the batch.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/pv/pv_index_builder.h"
#include "src/service/query_engine.h"
#include "src/shard/partitioner.h"
#include "src/shard/router.h"
#include "src/shard/shard_map.h"
#include "src/shard/shard_service.h"
#include "src/storage/env.h"
#include "src/uncertain/datagen.h"

namespace pvdb::shard {
namespace {

std::string TempDirPath(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "pvdb_shard_" + name + "_" +
                          std::to_string(::getpid());
  (void)storage::Env::Default()->CreateDirIfMissing(dir);
  return dir;
}

uncertain::Dataset MakeDb(int dim, size_t count, double extent,
                          uint64_t seed) {
  uncertain::SyntheticOptions options;
  options.dim = dim;
  options.count = count;
  options.max_region_extent = extent;
  options.samples_per_object = 24;
  options.seed = seed;
  return uncertain::GenerateSynthetic(options);
}

std::vector<geom::Point> MakeQueries(const geom::Rect& domain, int n,
                                     uint64_t seed) {
  Rng rng(seed);
  std::vector<geom::Point> queries;
  for (int i = 0; i < n; ++i) {
    geom::Point q(domain.dim());
    for (int d = 0; d < domain.dim(); ++d) {
      q[d] = rng.NextUniform(domain.lo(d), domain.hi(d));
    }
    queries.push_back(q);
  }
  return queries;
}

// The reference every router run is held against: one engine, canonical
// candidate order, over the sealed union dataset.
std::vector<service::QueryAnswer> ReferenceAnswers(
    const uncertain::Dataset& db, const std::vector<geom::Point>& queries) {
  auto builder = pv::PvIndexBuilder::Build(db);
  EXPECT_TRUE(builder.ok()) << builder.status().ToString();
  auto snapshot = builder.value()->Seal();
  EXPECT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  service::QueryEngineOptions options;
  options.threads = 1;
  options.canonical_candidates = true;
  auto engine = service::QueryEngine::CreateFromSnapshot(snapshot.value(),
                                                         options);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return engine.value()->ExecuteBatch(service::PnnRequests(queries));
}

void ExpectBitIdentical(const std::vector<service::QueryAnswer>& got,
                        const std::vector<service::QueryAnswer>& want,
                        const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_TRUE(got[i].status.ok())
        << label << " query " << i << ": " << got[i].status.ToString();
    ASSERT_TRUE(want[i].status.ok())
        << label << " reference query " << i << ": "
        << want[i].status.ToString();
    ASSERT_EQ(got[i].results.size(), want[i].results.size())
        << label << " query " << i;
    for (size_t j = 0; j < got[i].results.size(); ++j) {
      EXPECT_EQ(got[i].results[j].id, want[i].results[j].id)
          << label << " query " << i << " result " << j;
      // Bitwise, not epsilon: the merge must reproduce the engine exactly.
      EXPECT_EQ(std::memcmp(&got[i].results[j].probability,
                            &want[i].results[j].probability, sizeof(double)),
                0)
          << label << " query " << i << " result " << j << ": "
          << got[i].results[j].probability << " vs "
          << want[i].results[j].probability;
    }
  }
}

// ---------------------------------------------------------------------------
// Partition planning invariants
// ---------------------------------------------------------------------------

TEST(PartitionPlanTest, PlaneSplitsOwnEveryObjectExactlyOnce) {
  const uncertain::Dataset db = MakeDb(3, 500, /*extent=*/800.0, 11);
  PartitionOptions options;
  options.shard_count = 4;
  options.strategy = SplitStrategy::kPlane;
  auto plan = PlanPartition(db, options);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan.value().map.shard_count(), 4u);

  // Owner = member and not ghost; every object must have exactly one.
  std::unordered_map<uncertain::ObjectId, int> owners;
  size_t total_ghosts = 0;
  for (size_t s = 0; s < 4; ++s) {
    const ShardInfo& info = plan.value().map.shards[s];
    std::unordered_set<uncertain::ObjectId> ghosts(info.ghost_ids.begin(),
                                                   info.ghost_ids.end());
    total_ghosts += ghosts.size();
    EXPECT_EQ(info.object_count, plan.value().members[s].size());
    for (uncertain::ObjectId id : plan.value().members[s]) {
      if (ghosts.count(id) == 0) owners[id]++;
      // Member invariant: the object's UBR intersects the shard's cell.
      EXPECT_TRUE(db.Find(id)->region().Intersects(info.region));
      // bbox covers every member's UBR.
      EXPECT_TRUE(info.has_bbox);
      EXPECT_TRUE(info.bbox.ContainsRect(db.Find(id)->region()));
    }
  }
  EXPECT_EQ(owners.size(), db.size());
  for (const auto& [id, n] : owners) EXPECT_EQ(n, 1) << "object " << id;
  // Wide UBRs (extent 800 on a 10k domain, 4 cells) must actually straddle.
  EXPECT_GT(total_ghosts, 0u) << "test dataset produced no straddlers";
}

TEST(PartitionPlanTest, MortonRangeIsDisjointAndBalanced) {
  const uncertain::Dataset db = MakeDb(2, 400, 20.0, 5);
  PartitionOptions options;
  options.shard_count = 5;
  options.strategy = SplitStrategy::kMortonRange;
  auto plan = PlanPartition(db, options);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  size_t total = 0;
  for (size_t s = 0; s < 5; ++s) {
    const ShardInfo& info = plan.value().map.shards[s];
    EXPECT_TRUE(info.ghost_ids.empty());
    // Balanced runs: n/k rounded either way.
    EXPECT_GE(info.object_count, 400u / 5);
    EXPECT_LE(info.object_count, 400u / 5 + 1);
    total += info.object_count;
  }
  EXPECT_EQ(total, db.size());
}

TEST(PartitionOptionsTest, ValidationNamesTheOffendingField) {
  PartitionOptions options;
  options.shard_count = 0;
  EXPECT_EQ(ValidatePartitionOptions(options, 100).code(),
            StatusCode::kInvalidArgument);
  options.shard_count = 5000;
  EXPECT_NE(ValidatePartitionOptions(options, 10000).ToString().find(
                "shard_count"),
            std::string::npos);
  options.shard_count = 64;
  EXPECT_EQ(ValidatePartitionOptions(options, 10).code(),
            StatusCode::kInvalidArgument);
  options.shard_count = 2;
  EXPECT_TRUE(ValidatePartitionOptions(options, 10).ok());
}

TEST(RouterOptionsTest, ValidationNamesTheOffendingField) {
  RouterOptions options;
  options.deadline_ms = 0.0;
  EXPECT_NE(ValidateRouterOptions(options).ToString().find("deadline"),
            std::string::npos);
  options = RouterOptions{};
  options.max_retries = -1;
  EXPECT_EQ(ValidateRouterOptions(options).code(),
            StatusCode::kInvalidArgument);
  options = RouterOptions{};
  options.min_probability = 1.0;
  EXPECT_EQ(ValidateRouterOptions(options).code(),
            StatusCode::kInvalidArgument);
  options = RouterOptions{};
  EXPECT_TRUE(ValidateRouterOptions(options).ok());
}

// ---------------------------------------------------------------------------
// Shard-map manifest: round trip + corruption hardening
// ---------------------------------------------------------------------------

ShardMap MakeMap() {
  ShardMap map;
  map.dim = 2;
  map.domain = geom::Rect(2);
  map.domain.set_lo(0, 0.0);
  map.domain.set_hi(0, 100.0);
  map.domain.set_lo(1, 0.0);
  map.domain.set_hi(1, 100.0);
  ShardInfo a;
  a.snapshot_file = "shard-0.snap";
  a.region = map.domain;
  a.bbox = map.domain;
  a.has_bbox = true;
  a.object_count = 3;
  a.ghost_ids = {7, 9};
  ShardInfo b;
  b.snapshot_file = "shard-1.snap";
  b.region = map.domain;
  b.has_bbox = false;
  b.object_count = 0;
  map.shards = {a, b};
  return map;
}

TEST(ShardMapTest, EncodeDecodeRoundTrip) {
  const ShardMap map = MakeMap();
  auto decoded = DecodeShardMap(EncodeShardMap(map));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().dim, 2);
  ASSERT_EQ(decoded.value().shard_count(), 2u);
  EXPECT_EQ(decoded.value().shards[0].snapshot_file, "shard-0.snap");
  EXPECT_EQ(decoded.value().shards[0].ghost_ids,
            (std::vector<uncertain::ObjectId>{7, 9}));
  EXPECT_FALSE(decoded.value().shards[1].has_bbox);
  EXPECT_EQ(decoded.value().shards[1].object_count, 0u);
}

TEST(ShardMapTest, TruncationAtEveryLengthIsDescriptiveCorruption) {
  const std::vector<uint8_t> image = EncodeShardMap(MakeMap());
  for (size_t len = 0; len < image.size(); ++len) {
    auto decoded = DecodeShardMap(
        std::span<const uint8_t>(image.data(), len));
    ASSERT_FALSE(decoded.ok()) << "truncated to " << len << " parsed";
    EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption)
        << "len " << len << ": " << decoded.status().ToString();
    EXPECT_FALSE(decoded.status().ToString().empty());
  }
}

TEST(ShardMapTest, EveryFlippedByteIsRejected) {
  const std::vector<uint8_t> image = EncodeShardMap(MakeMap());
  // Flip each byte: either the CRC catches it, or (for a flip inside the
  // magic/header) the structural check does. Nothing may decode OK —
  // except a flip that is itself caught as NotSupported (version byte).
  for (size_t i = 0; i < image.size(); ++i) {
    std::vector<uint8_t> bad = image;
    bad[i] ^= 0x40;
    auto decoded = DecodeShardMap(bad);
    ASSERT_FALSE(decoded.ok()) << "flip at " << i << " parsed";
    EXPECT_TRUE(decoded.status().code() == StatusCode::kCorruption ||
                decoded.status().code() == StatusCode::kNotSupported)
        << "flip at " << i << ": " << decoded.status().ToString();
  }
}

TEST(ShardMapTest, TrailingBytesAreCorruption) {
  std::vector<uint8_t> image = EncodeShardMap(MakeMap());
  image.push_back(0);
  auto decoded = DecodeShardMap(image);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

TEST(ShardMapTest, SaveLoadRoundTripAndMissingFile) {
  const std::string dir = TempDirPath("map");
  ASSERT_TRUE(SaveShardMap(MakeMap(), dir).ok());
  auto loaded = LoadShardMap(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().shard_count(), 2u);
  auto missing = LoadShardMap(dir + "_nonexistent");
  EXPECT_FALSE(missing.ok());
}

// ---------------------------------------------------------------------------
// The acceptance property: K-shard bit-identity on randomized datasets
// ---------------------------------------------------------------------------

struct IdentityCase {
  int dim;
  size_t count;
  double extent;  // large extents force boundary-straddling UBRs
  int shards;
  SplitStrategy strategy;
  uint64_t seed;
};

class RouterIdentityTest : public ::testing::TestWithParam<IdentityCase> {};

TEST_P(RouterIdentityTest, MatchesSingleEngineBitForBit) {
  const IdentityCase& c = GetParam();
  const uncertain::Dataset db = MakeDb(c.dim, c.count, c.extent, c.seed);
  const std::vector<geom::Point> queries =
      MakeQueries(db.domain(), 48, c.seed + 1);
  const std::vector<service::QueryAnswer> want = ReferenceAnswers(db, queries);

  const std::string dir = TempDirPath(
      "identity_" + std::to_string(c.shards) + "_" +
      std::to_string(c.seed) + "_" +
      std::to_string(static_cast<int>(c.strategy)));
  PartitionOptions options;
  options.shard_count = c.shards;
  options.strategy = c.strategy;
  auto map = BuildShardSnapshots(db, options, dir);
  ASSERT_TRUE(map.ok()) << map.status().ToString();

  auto set = OpenShardDir(dir);
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  auto router = ShardRouter::Create(set.value().map,
                                    set.value().connections, {});
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  RouterStats stats;
  const std::vector<service::QueryAnswer> got =
      router.value()->Execute(service::PnnRequests(queries), &stats);
  ExpectBitIdentical(got, want, "K=" + std::to_string(c.shards));
  EXPECT_EQ(stats.queries, static_cast<int64_t>(queries.size()));
  // A second batch reuses the router's record cache and must still match.
  const std::vector<service::QueryAnswer> again =
      router.value()->Execute(service::PnnRequests(queries), nullptr);
  ExpectBitIdentical(again, want, "cached K=" + std::to_string(c.shards));
}

INSTANTIATE_TEST_SUITE_P(
    RandomizedDatasets, RouterIdentityTest,
    ::testing::Values(
        // K=1 is the degenerate identity; everything flows through the
        // same merge code.
        IdentityCase{3, 300, 20.0, 1, SplitStrategy::kPlane, 101},
        IdentityCase{3, 300, 20.0, 2, SplitStrategy::kPlane, 102},
        // Huge uncertainty regions: most objects straddle cell boundaries,
        // so the ghost dedup path carries the test.
        IdentityCase{3, 250, 2500.0, 4, SplitStrategy::kPlane, 103},
        IdentityCase{2, 400, 900.0, 4, SplitStrategy::kPlane, 104},
        IdentityCase{4, 200, 600.0, 3, SplitStrategy::kPlane, 105},
        IdentityCase{3, 300, 400.0, 4, SplitStrategy::kMortonRange, 106},
        IdentityCase{2, 350, 1500.0, 5, SplitStrategy::kMortonRange, 107}));

// ---------------------------------------------------------------------------
// Typed vocabulary through the router: every kind bit-identical to one
// canonical engine over the union dataset
// ---------------------------------------------------------------------------

TEST(RouterTypedExecuteTest, EveryKindMatchesSingleEngineBitForBit) {
  const uncertain::Dataset db = MakeDb(2, 300, 600.0, 201);
  auto builder = pv::PvIndexBuilder::Build(db);
  ASSERT_TRUE(builder.ok());
  auto snapshot = builder.value()->Seal();
  ASSERT_TRUE(snapshot.ok());
  service::QueryEngineOptions engine_options;
  engine_options.threads = 1;
  engine_options.canonical_candidates = true;
  auto engine = service::QueryEngine::CreateFromSnapshot(snapshot.value(),
                                                         engine_options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  const std::string dir = TempDirPath("typed");
  PartitionOptions options;
  options.shard_count = 3;
  ASSERT_TRUE(BuildShardSnapshots(db, options, dir).ok());
  auto set = OpenShardDir(dir);
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  auto router = ShardRouter::Create(set.value().map,
                                    set.value().connections, {});
  ASSERT_TRUE(router.ok()) << router.status().ToString();

  // A heterogeneous batch: several requests of every kind, randomized.
  Rng rng(202);
  std::vector<service::QueryRequest> requests;
  for (int i = 0; i < 6; ++i) {
    geom::Point q(2);
    for (int d = 0; d < 2; ++d) {
      q[d] = rng.NextUniform(db.domain().lo(d), db.domain().hi(d));
    }
    switch (i % 3) {
      case 0:
        requests.push_back(service::QueryRequest::Pnn(q));
        break;
      case 1:
        requests.push_back(service::QueryRequest::TopKByProb(q, 1 + i));
        break;
      default:
        requests.push_back(service::QueryRequest::ThresholdNN(q, 0.1));
        break;
    }
  }
  for (int i = 0; i < 3; ++i) {
    geom::Rect rect(2);
    for (int d = 0; d < 2; ++d) {
      const double lo =
          rng.NextUniform(db.domain().lo(d), db.domain().hi(d) * 0.6);
      rect.set_lo(d, lo);
      rect.set_hi(d, lo + rng.NextUniform(0.0, db.domain().hi(d) * 0.4));
    }
    requests.push_back(service::QueryRequest::RangeProb(rect, i * 0.2));
  }
  for (int i = 0; i < 2; ++i) {
    std::vector<geom::Point> polyline;
    for (int v = 0; v < 3; ++v) {
      geom::Point p(2);
      for (int d = 0; d < 2; ++d) {
        p[d] = rng.NextUniform(db.domain().lo(d), db.domain().hi(d));
      }
      polyline.push_back(p);
    }
    requests.push_back(service::QueryRequest::TrajectoryPnn(
        polyline, (db.domain().hi(0) - db.domain().lo(0)) / 16.0));
  }
  // One malformed request rides along: it must answer InvalidArgument on
  // both sides, never poison its siblings.
  requests.push_back(service::QueryRequest::TopKByProb(geom::Point(2), 0));

  const std::vector<service::QueryAnswer> want =
      engine.value()->ExecuteBatch(requests);
  RouterStats stats;
  const std::vector<service::QueryAnswer> got =
      router.value()->Execute(requests, &stats);
  ASSERT_EQ(got.size(), want.size());
  ASSERT_EQ(got.size(), requests.size());
  for (size_t i = 0; i < got.size(); ++i) {
    SCOPED_TRACE("request " + std::to_string(i) + " (" +
                 service::QueryKindName(requests[i].kind) + ")");
    EXPECT_EQ(got[i].status.code(), want[i].status.code());
    EXPECT_EQ(got[i].kind, want[i].kind);
    ASSERT_EQ(got[i].results.size(), want[i].results.size());
    for (size_t j = 0; j < got[i].results.size(); ++j) {
      EXPECT_EQ(got[i].results[j].id, want[i].results[j].id);
      EXPECT_EQ(std::memcmp(&got[i].results[j].probability,
                            &want[i].results[j].probability, sizeof(double)),
                0)
          << "result " << j << ": " << got[i].results[j].probability
          << " vs " << want[i].results[j].probability;
    }
    ASSERT_EQ(got[i].steps.size(), want[i].steps.size());
    for (size_t s = 0; s < got[i].steps.size(); ++s) {
      const auto& gs = got[i].steps[s];
      const auto& ws = want[i].steps[s];
      ASSERT_EQ(gs.results.size(), ws.results.size()) << "step " << s;
      for (size_t j = 0; j < ws.results.size(); ++j) {
        EXPECT_EQ(gs.results[j].id, ws.results[j].id) << "step " << s;
        EXPECT_EQ(std::memcmp(&gs.results[j].probability,
                              &ws.results[j].probability, sizeof(double)),
                  0)
            << "step " << s << " result " << j;
      }
    }
  }
  EXPECT_EQ(got.back().status.code(), StatusCode::kInvalidArgument);
  // Router accounting is per evaluation unit (a trajectory counts one per
  // arc-length sample), matching the engine's ServiceStats convention.
  int64_t units = 0;
  for (const service::QueryRequest& req : requests) {
    units += (req.kind == service::QueryKind::kTrajectoryPnn)
                 ? static_cast<int64_t>(
                       service::SampleTrajectory(req.polyline, req.step)
                           .size())
                 : 1;
  }
  EXPECT_EQ(stats.queries, units);
}

// ---------------------------------------------------------------------------
// Degradation: unreachable shard → per-answer kUnavailable, never a hang
// ---------------------------------------------------------------------------

/// A shard that always fails its RPCs — the local stand-in for a
/// SIGKILLed remote peer (the cross-process version runs in CI).
class DeadConnection : public ShardConnection {
 public:
  Result<std::vector<ShardStep1Answer>> Step1Batch(
      std::span<const geom::Point>) override {
    return Status::Unavailable("connection refused (peer dead)");
  }
  Result<std::vector<uncertain::UncertainObject>> FetchRecords(
      std::span<const uncertain::ObjectId>) override {
    return Status::Unavailable("connection refused (peer dead)");
  }
};

TEST(RouterDegradationTest, DeadShardPoisonsOnlyItsQueries) {
  const uncertain::Dataset db = MakeDb(3, 300, 40.0, 31);
  const std::vector<geom::Point> queries = MakeQueries(db.domain(), 64, 32);
  const std::vector<service::QueryAnswer> want = ReferenceAnswers(db, queries);

  const std::string dir = TempDirPath("degrade");
  PartitionOptions options;
  options.shard_count = 4;
  auto map = BuildShardSnapshots(db, options, dir);
  ASSERT_TRUE(map.ok()) << map.status().ToString();
  auto set = OpenShardDir(dir);
  ASSERT_TRUE(set.ok()) << set.status().ToString();

  // Kill shard 2. Queries whose fanout includes it must degrade; everyone
  // else must still match the reference bit for bit.
  set.value().connections[2] = std::make_shared<DeadConnection>();
  RouterOptions router_options;
  router_options.max_retries = 0;
  auto router = ShardRouter::Create(set.value().map,
                                    set.value().connections, router_options);
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  RouterStats stats;
  const std::vector<service::QueryAnswer> got =
      router.value()->Execute(service::PnnRequests(queries), &stats);
  ASSERT_EQ(got.size(), queries.size());

  size_t unavailable = 0;
  for (size_t i = 0; i < got.size(); ++i) {
    if (!got[i].status.ok()) {
      // Degradation is always the typed kUnavailable, never another code.
      EXPECT_EQ(got[i].status.code(), StatusCode::kUnavailable)
          << "query " << i << ": " << got[i].status.ToString();
      unavailable++;
      continue;
    }
    // A query the router answered despite the dead shard must still be
    // bit-identical — a poisoned candidate set would show up here.
    ASSERT_EQ(got[i].results.size(), want[i].results.size());
    for (size_t j = 0; j < got[i].results.size(); ++j) {
      EXPECT_EQ(got[i].results[j].id, want[i].results[j].id);
      EXPECT_EQ(std::memcmp(&got[i].results[j].probability,
                            &want[i].results[j].probability,
                            sizeof(double)),
                0);
    }
  }
  // Every query whose ROUND-1 fanout includes the dead shard is poisoned
  // (later rounds can only add more shards, never drop that need).
  for (size_t i = 0; i < got.size(); ++i) {
    const std::vector<size_t> fanout =
        RelevantShards(set.value().map, queries[i]);
    if (std::find(fanout.begin(), fanout.end(), size_t{2}) != fanout.end()) {
      EXPECT_EQ(got[i].status.code(), StatusCode::kUnavailable)
          << "query " << i << " fans out to the dead shard but answered: "
          << got[i].status.ToString();
    }
  }
  EXPECT_GT(unavailable, 0u) << "no query ever touched the dead shard";
  EXPECT_EQ(stats.unavailable, static_cast<int64_t>(unavailable));
}

TEST(RouterDegradationTest, AllShardsDeadStillAnswersEveryQuery) {
  const uncertain::Dataset db = MakeDb(2, 100, 20.0, 77);
  const std::string dir = TempDirPath("alldead");
  PartitionOptions options;
  options.shard_count = 2;
  ASSERT_TRUE(BuildShardSnapshots(db, options, dir).ok());
  auto set = OpenShardDir(dir);
  ASSERT_TRUE(set.ok());
  std::vector<std::shared_ptr<ShardConnection>> dead = {
      std::make_shared<DeadConnection>(), std::make_shared<DeadConnection>()};
  RouterOptions router_options;
  router_options.max_retries = 1;
  auto router =
      ShardRouter::Create(set.value().map, dead, router_options);
  ASSERT_TRUE(router.ok());
  const std::vector<geom::Point> queries = MakeQueries(db.domain(), 8, 5);
  const auto got = router.value()->Execute(service::PnnRequests(queries),
                                           nullptr);
  ASSERT_EQ(got.size(), queries.size());
  for (const auto& a : got) {
    EXPECT_EQ(a.status.code(), StatusCode::kUnavailable);
    // The retry budget must surface in the message (it names attempts).
    EXPECT_NE(a.status.ToString().find("attempt"), std::string::npos)
        << a.status.ToString();
  }
}

// ---------------------------------------------------------------------------
// BuildShardSnapshots writes the manifest last (crash safety)
// ---------------------------------------------------------------------------

TEST(BuildShardSnapshotsTest, ManifestReferencesOpenableSnapshots) {
  const uncertain::Dataset db = MakeDb(3, 200, 100.0, 13);
  const std::string dir = TempDirPath("build");
  PartitionOptions options;
  options.shard_count = 3;
  auto map = BuildShardSnapshots(db, options, dir);
  ASSERT_TRUE(map.ok()) << map.status().ToString();
  auto set = OpenShardDir(dir);
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  ASSERT_EQ(set.value().snapshots.size(), 3u);
  uint64_t total = 0;
  for (const auto& snap : set.value().snapshots) {
    total += snap->object_count();
  }
  size_t ghosts = 0;
  for (const ShardInfo& s : map.value().shards) ghosts += s.ghost_ids.size();
  EXPECT_EQ(total, db.size() + ghosts);
}

}  // namespace
}  // namespace pvdb::shard
