// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Incremental PV-index maintenance (Section VI-B): after any sequence of
// insertions and deletions, query answers must equal both the brute-force
// oracle and a from-scratch rebuild; UBRs must respect the Lemma-9
// monotonicity; Lemma-8 filtering must keep the affected set a subset of
// the candidates.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/random.h"
#include "src/pv/pnnq.h"
#include "src/pv/pv_index.h"
#include "src/storage/pager.h"
#include "src/uncertain/datagen.h"

namespace pvdb::pv {
namespace {

std::vector<uncertain::ObjectId> SortedIds(
    std::vector<uncertain::ObjectId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

void ExpectAnswersMatchOracle(const PvIndex& index,
                              const uncertain::Dataset& db, int queries,
                              uint64_t seed) {
  Rng rng(seed);
  const int dim = db.dim();
  for (int q = 0; q < queries; ++q) {
    geom::Point query(dim);
    for (int i = 0; i < dim; ++i) {
      query[i] = rng.NextUniform(db.domain().lo(i), db.domain().hi(i));
    }
    auto got = index.QueryPossibleNN(query);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(SortedIds(got.value()), Step1BruteForce(db, query))
        << "query " << query.ToString();
  }
}

struct UpdateFixture {
  UpdateFixture(int dim, size_t count, uint64_t seed) {
    uncertain::SyntheticOptions synth;
    synth.dim = dim;
    synth.count = count;
    synth.samples_per_object = 6;
    synth.seed = seed;
    db = std::make_unique<uncertain::Dataset>(
        uncertain::GenerateSynthetic(synth));
    pager = std::make_unique<storage::InMemoryPager>();
    auto built = PvIndex::Build(*db, pager.get(), PvIndexOptions{});
    PVDB_CHECK(built.ok());
    index = std::move(built).value();
  }

  std::unique_ptr<uncertain::Dataset> db;
  std::unique_ptr<storage::InMemoryPager> pager;
  std::unique_ptr<PvIndex> index;
};

TEST(UpdateTest, DeletionKeepsAnswersExact) {
  UpdateFixture fx(3, 250, /*seed=*/1);
  Rng rng(2);
  std::vector<uncertain::ObjectId> ids = fx.db->Ids();
  rng.Shuffle(&ids);
  for (int k = 0; k < 30; ++k) {
    const uncertain::ObjectId victim = ids[static_cast<size_t>(k)];
    const uncertain::UncertainObject removed = *fx.db->Find(victim);
    ASSERT_TRUE(fx.db->Remove(victim).ok());
    UpdateStats stats;
    ASSERT_TRUE(fx.index->DeleteObject(*fx.db, removed, &stats).ok());
    EXPECT_LE(stats.affected, stats.candidates);
    if (k % 10 == 9) {
      ExpectAnswersMatchOracle(*fx.index, *fx.db, 25,
                               100 + static_cast<uint64_t>(k));
    }
  }
  ExpectAnswersMatchOracle(*fx.index, *fx.db, 50, 999);
}

TEST(UpdateTest, InsertionKeepsAnswersExact) {
  UpdateFixture fx(3, 200, /*seed=*/3);
  Rng rng(4);
  for (int k = 0; k < 30; ++k) {
    const auto id = static_cast<uncertain::ObjectId>(10000 + k);
    geom::Point c(3);
    for (int i = 0; i < 3; ++i) c[i] = rng.NextUniform(100, 9900);
    const auto obj = uncertain::UncertainObject::UniformSampled(
        id, geom::Rect::FromCenterHalfWidths(c, geom::Point{8, 8, 8}), 6,
        &rng);
    ASSERT_TRUE(fx.db->Add(obj).ok());
    UpdateStats stats;
    ASSERT_TRUE(fx.index->InsertObject(*fx.db, id, &stats).ok());
    EXPECT_LE(stats.affected, stats.candidates);
    if (k % 10 == 9) {
      ExpectAnswersMatchOracle(*fx.index, *fx.db, 25,
                               200 + static_cast<uint64_t>(k));
    }
  }
  ExpectAnswersMatchOracle(*fx.index, *fx.db, 50, 998);
}

TEST(UpdateTest, MixedChurnMatchesRebuild) {
  UpdateFixture fx(2, 150, /*seed=*/5);
  Rng rng(6);
  uint64_t next_id = 100000;
  for (int round = 0; round < 60; ++round) {
    if (fx.db->size() > 20 && rng.NextBool(0.5)) {
      const auto ids = fx.db->Ids();
      const auto victim =
          ids[static_cast<size_t>(rng.NextBounded(ids.size()))];
      const uncertain::UncertainObject removed = *fx.db->Find(victim);
      ASSERT_TRUE(fx.db->Remove(victim).ok());
      ASSERT_TRUE(fx.index->DeleteObject(*fx.db, removed).ok());
    } else {
      geom::Point c(2);
      for (int i = 0; i < 2; ++i) c[i] = rng.NextUniform(100, 9900);
      const auto obj = uncertain::UncertainObject::UniformSampled(
          next_id, geom::Rect::FromCenterHalfWidths(c, geom::Point{10, 10}),
          6, &rng);
      ASSERT_TRUE(fx.db->Add(obj).ok());
      ASSERT_TRUE(fx.index->InsertObject(*fx.db, next_id).ok());
      ++next_id;
    }
  }

  // Compare against a from-scratch rebuild on the final database.
  storage::InMemoryPager rebuild_pager;
  auto rebuilt = PvIndex::Build(*fx.db, &rebuild_pager, PvIndexOptions{});
  ASSERT_TRUE(rebuilt.ok());
  Rng rng2(7);
  for (int q = 0; q < 60; ++q) {
    geom::Point query{rng2.NextUniform(0, 10000), rng2.NextUniform(0, 10000)};
    auto inc = fx.index->QueryPossibleNN(query);
    auto reb = rebuilt.value()->QueryPossibleNN(query);
    ASSERT_TRUE(inc.ok());
    ASSERT_TRUE(reb.ok());
    EXPECT_EQ(SortedIds(inc.value()), SortedIds(reb.value()));
    EXPECT_EQ(SortedIds(inc.value()), Step1BruteForce(*fx.db, query));
  }
}

TEST(UpdateTest, DeletionGrowsUbrsMonotonically) {
  UpdateFixture fx(2, 120, /*seed=*/8);
  // Snapshot UBRs.
  std::vector<std::pair<uncertain::ObjectId, geom::Rect>> before;
  for (const auto& o : fx.db->objects()) {
    auto ubr = fx.index->GetUbr(o.id());
    ASSERT_TRUE(ubr.ok());
    before.emplace_back(o.id(), ubr.value());
  }
  // Delete a few objects.
  Rng rng(9);
  auto ids = fx.db->Ids();
  rng.Shuffle(&ids);
  for (int k = 0; k < 10; ++k) {
    const auto victim = ids[static_cast<size_t>(k)];
    const uncertain::UncertainObject removed = *fx.db->Find(victim);
    ASSERT_TRUE(fx.db->Remove(victim).ok());
    ASSERT_TRUE(fx.index->DeleteObject(*fx.db, removed).ok());
  }
  // Lemma 9: every surviving UBR is a superset of its old self.
  for (const auto& [id, old_ubr] : before) {
    if (fx.db->Find(id) == nullptr) continue;
    auto now = fx.index->GetUbr(id);
    ASSERT_TRUE(now.ok());
    EXPECT_TRUE(now.value().Inflated(1e-9).ContainsRect(old_ubr))
        << "object " << id << " UBR shrank after deletions";
  }
}

TEST(UpdateTest, InsertionShrinksUbrsMonotonically) {
  UpdateFixture fx(2, 120, /*seed=*/10);
  std::vector<std::pair<uncertain::ObjectId, geom::Rect>> before;
  for (const auto& o : fx.db->objects()) {
    auto ubr = fx.index->GetUbr(o.id());
    ASSERT_TRUE(ubr.ok());
    before.emplace_back(o.id(), ubr.value());
  }
  Rng rng(11);
  for (int k = 0; k < 10; ++k) {
    const auto id = static_cast<uncertain::ObjectId>(50000 + k);
    geom::Point c(2);
    for (int i = 0; i < 2; ++i) c[i] = rng.NextUniform(500, 9500);
    ASSERT_TRUE(fx.db
                    ->Add(uncertain::UncertainObject::UniformSampled(
                        id,
                        geom::Rect::FromCenterHalfWidths(c,
                                                         geom::Point{10, 10}),
                        6, &rng))
                    .ok());
    ASSERT_TRUE(fx.index->InsertObject(*fx.db, id).ok());
  }
  for (const auto& [id, old_ubr] : before) {
    auto now = fx.index->GetUbr(id);
    ASSERT_TRUE(now.ok());
    EXPECT_TRUE(old_ubr.Inflated(1e-9).ContainsRect(now.value()))
        << "object " << id << " UBR grew after insertions";
  }
}

TEST(UpdateTest, DeleteDownToOneObject) {
  UpdateFixture fx(2, 10, /*seed=*/12);
  auto ids = fx.db->Ids();
  for (size_t k = 0; k + 1 < ids.size(); ++k) {
    const uncertain::UncertainObject removed = *fx.db->Find(ids[k]);
    ASSERT_TRUE(fx.db->Remove(ids[k]).ok());
    ASSERT_TRUE(fx.index->DeleteObject(*fx.db, removed).ok());
  }
  ASSERT_EQ(fx.db->size(), 1u);
  // The survivor's PV-cell is the whole domain again.
  auto got = fx.index->QueryPossibleNN(geom::Point{9999, 1});
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got.value().size(), 1u);
  EXPECT_EQ(got.value()[0], ids.back());
}

TEST(UpdateTest, ApiMisuseRejected) {
  UpdateFixture fx(2, 20, /*seed=*/13);
  // InsertObject without the object in db_after.
  EXPECT_EQ(fx.index->InsertObject(*fx.db, 777777).code(),
            StatusCode::kInvalidArgument);
  // DeleteObject while db_after still contains the object.
  const auto& o = fx.db->objects()[0];
  EXPECT_EQ(fx.index->DeleteObject(*fx.db, o).code(),
            StatusCode::kInvalidArgument);
}

TEST(UpdateTest, UpdateStatsTimingsPopulated) {
  UpdateFixture fx(3, 150, /*seed=*/14);
  Rng rng(15);
  const auto ids = fx.db->Ids();
  const auto victim = ids[3];
  const uncertain::UncertainObject removed = *fx.db->Find(victim);
  ASSERT_TRUE(fx.db->Remove(victim).ok());
  UpdateStats stats;
  ASSERT_TRUE(fx.index->DeleteObject(*fx.db, removed, &stats).ok());
  EXPECT_GT(stats.total_ms, 0.0);
  EXPECT_GE(stats.candidates, stats.affected);
  EXPECT_GE(stats.total_ms, stats.se_ms);
}

}  // namespace
}  // namespace pvdb::pv
