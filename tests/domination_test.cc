// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Property tests for the spatial-domination machinery (Section IV and
// Emrich et al. [17]): the O(d) Dominates(A,B,R) test is cross-checked
// against a dense-sampling oracle, Lemma 2 is verified, and the
// domination-count emptiness test (SE Step 9) is validated for
// conservativeness and usefulness.

#include <gtest/gtest.h>

#include <vector>

#include "src/common/random.h"
#include "src/geom/domination.h"
#include "src/geom/region_partition.h"

namespace pvdb::geom {
namespace {

Rect RandomRect(Rng* rng, int dim, double lo, double hi, double max_side) {
  Point a(dim), b(dim);
  for (int i = 0; i < dim; ++i) {
    const double c = rng->NextUniform(lo + max_side, hi - max_side);
    const double s = rng->NextUniform(0.1, max_side);
    a[i] = c - s;
    b[i] = c + s;
  }
  return Rect(a, b);
}

Point RandomPointIn(Rng* rng, const Rect& r) {
  Point p(r.dim());
  for (int i = 0; i < r.dim(); ++i) p[i] = rng->NextUniform(r.lo(i), r.hi(i));
  return p;
}

// Sampling oracle: does a dominate b on all sampled points of r?
bool DominatesBySampling(const Rect& a, const Rect& b, const Rect& r,
                         Rng* rng, int samples) {
  // Corners first (extrema live there for the per-dimension terms), then
  // random interior points.
  for (unsigned mask = 0; mask < (1u << r.dim()); ++mask) {
    if (!PointInDom(a, b, r.Corner(mask))) return false;
  }
  for (int s = 0; s < samples; ++s) {
    if (!PointInDom(a, b, RandomPointIn(rng, r))) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Exact 2D cases
// ---------------------------------------------------------------------------

TEST(DominationTest, FarApartRegionsDominate) {
  // a near origin, b far away, r near a: a dominates b on r.
  Rect a(Point{0, 0}, Point{1, 1});
  Rect b(Point{50, 50}, Point{51, 51});
  Rect r(Point{0, 0}, Point{5, 5});
  EXPECT_TRUE(Dominates(a, b, r));
  EXPECT_FALSE(Dominates(b, a, r));
}

TEST(DominationTest, RegionSpanningBisectorNotDominated) {
  Rect a = Rect::FromPoint(Point{0, 0});
  Rect b = Rect::FromPoint(Point{10, 0});
  // r straddles the bisector x = 5.
  Rect r(Point{4, -1}, Point{6, 1});
  EXPECT_FALSE(Dominates(a, b, r));
  // r strictly on a's side.
  Rect r2(Point{0, -1}, Point{4.9, 1});
  EXPECT_TRUE(Dominates(a, b, r2));
}

TEST(DominationTest, PointPredicatesConsistent) {
  Rect a(Point{0, 0}, Point{2, 2});
  Rect b(Point{10, 10}, Point{12, 12});
  Point p{1, 1};
  EXPECT_TRUE(PointInDom(a, b, p));
  EXPECT_FALSE(PointInNonDom(a, b, p));
  Point far{11, 11};
  EXPECT_FALSE(PointInDom(a, b, far));
  EXPECT_TRUE(PointInNonDom(a, b, far));
}

TEST(DominationTest, StrictInequalityOnBoundary) {
  // Two points equidistant from the bisector point: no strict domination.
  Rect a = Rect::FromPoint(Point{0, 0});
  Rect b = Rect::FromPoint(Point{4, 0});
  Rect r = Rect::FromPoint(Point{2, 0});  // exactly on H_{a,b}
  EXPECT_FALSE(Dominates(a, b, r));
}

TEST(DominationTest, Lemma2IntersectingRegionsEmptyDom) {
  Rect a(Point{0, 0}, Point{4, 4});
  Rect b(Point{3, 3}, Point{6, 6});
  EXPECT_TRUE(DomIsEmpty(a, b));
  Rect c(Point{5, 5}, Point{6, 6});
  EXPECT_FALSE(DomIsEmpty(a, c));
}

// When u(a) intersects u(b), no point anywhere is strictly dominated
// (Lemma 2: dom(a, b) = ∅).
TEST(DominationTest, Lemma2NoPointDominatedWhenOverlapping) {
  Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    Rect a = RandomRect(&rng, 2, 0, 100, 10);
    // Force overlap: b shares a's center.
    Rect b = Rect::FromCenterHalfWidths(a.Center(), Point{3, 3});
    ASSERT_TRUE(a.Intersects(b));
    for (int s = 0; s < 300; ++s) {
      const Point p = RandomPointIn(&rng, Rect::Cube(2, -50, 150));
      EXPECT_FALSE(PointInDom(a, b, p))
          << "dom(a,b) must be empty for intersecting regions";
    }
  }
}

// ---------------------------------------------------------------------------
// Randomized equivalence with the sampling oracle (per dimension)
// ---------------------------------------------------------------------------

class DominationPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(DominationPropertyTest, MatchesSamplingOracle) {
  const int dim = GetParam();
  Rng rng(1000 + dim);
  int positives = 0;
  for (int trial = 0; trial < 300; ++trial) {
    const Rect a = RandomRect(&rng, dim, 0, 100, 6);
    const Rect b = RandomRect(&rng, dim, 0, 100, 6);
    const Rect r = RandomRect(&rng, dim, 0, 100, 15);
    const bool exact = Dominates(a, b, r);
    positives += exact ? 1 : 0;
    if (exact) {
      // Exact positive ⇒ every sampled point dominated.
      EXPECT_TRUE(DominatesBySampling(a, b, r, &rng, 400))
          << "a=" << a.ToString() << " b=" << b.ToString()
          << " r=" << r.ToString();
    }
  }
  // The trial distribution must exercise both outcomes.
  EXPECT_GT(positives, 5);
  EXPECT_LT(positives, 295);
}

TEST_P(DominationPropertyTest, NegativeHasWitness) {
  // When Dominates says no, the margin is attained: a fine grid search
  // along the candidate coordinates finds a point that is not dominated.
  const int dim = GetParam();
  Rng rng(2000 + dim);
  for (int trial = 0; trial < 200; ++trial) {
    const Rect a = RandomRect(&rng, dim, 0, 100, 6);
    const Rect b = RandomRect(&rng, dim, 0, 100, 6);
    const Rect r = RandomRect(&rng, dim, 0, 100, 15);
    if (Dominates(a, b, r)) continue;
    // Build the candidate point per dimension by maximizing the 1D term.
    Point witness(dim);
    for (int i = 0; i < dim; ++i) {
      double best_t = r.lo(i);
      double best_g = -1e300;
      auto g = [&](double t) {
        const double dlo = t - a.lo(i), dhi = t - a.hi(i);
        const double max_a = std::max(dlo * dlo, dhi * dhi);
        double db = 0;
        if (t < b.lo(i)) db = b.lo(i) - t;
        if (t > b.hi(i)) db = t - b.hi(i);
        return max_a - db * db;
      };
      for (double t : {r.lo(i), r.hi(i), 0.5 * (a.lo(i) + a.hi(i)), b.lo(i),
                       b.hi(i)}) {
        if (t < r.lo(i) || t > r.hi(i)) continue;
        if (g(t) > best_g) {
          best_g = g(t);
          best_t = t;
        }
      }
      witness[i] = best_t;
    }
    EXPECT_FALSE(PointInDom(a, b, witness))
        << "negative test must have an undominated witness point";
  }
}

TEST_P(DominationPropertyTest, MarginSignMatchesPointSweep) {
  // DominationMarginSq must equal the max of the pointwise margin over the
  // candidate grid (validates the per-dimension decomposition).
  const int dim = GetParam();
  Rng rng(3000 + dim);
  for (int trial = 0; trial < 100; ++trial) {
    const Rect a = RandomRect(&rng, dim, 0, 100, 6);
    const Rect b = RandomRect(&rng, dim, 0, 100, 6);
    const Rect r = RandomRect(&rng, dim, 0, 100, 12);
    const double margin = DominationMarginSq(a, b, r);
    double sampled = -1e300;
    for (int s = 0; s < 500; ++s) {
      const Point p = RandomPointIn(&rng, r);
      sampled = std::max(sampled, MaxDistSq(a, p) - MinDistSq(b, p));
    }
    // Sampling can only under-estimate the true maximum.
    EXPECT_GE(margin, sampled - 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, DominationPropertyTest,
                         ::testing::Values(2, 3, 4, 5));

// ---------------------------------------------------------------------------
// Domination-count emptiness test (SE Step 9)
// ---------------------------------------------------------------------------

TEST(RegionPartitionTest, SingleDominatorDischargesWholeRegion) {
  Rect o(Point{50, 50}, Point{52, 52});
  std::vector<Rect> cset{Rect(Point{10, 10}, Point{12, 12})};
  // Region near the candidate, far from o: dominated outright.
  Rect region(Point{8, 8}, Point{14, 14});
  PartitionStats stats;
  EXPECT_TRUE(ProvenOutsidePVCell(region, o, cset, 10, &stats));
  EXPECT_EQ(stats.cells_examined, 1);
  EXPECT_TRUE(stats.proven);
}

TEST(RegionPartitionTest, Figure6bNeedsPartitioning) {
  // Figure 6(b): R is not contained in dom(a1, b) nor dom(a2, b), but every
  // point of R is in one of them — partitioning detects it. Geometry: a
  // tall strip R with a1 below, a2 above, and b to the right at a distance
  // where each candidate only wins on its own half of the strip.
  Rect b(Point{65, 49}, Point{67, 51});
  std::vector<Rect> cset{Rect(Point{49, 39}, Point{51, 41}),   // a1 (south)
                         Rect(Point{49, 59}, Point{51, 61})};  // a2 (north)
  Rect region(Point{50, 40}, Point{52, 60});
  // No single candidate dominates the whole strip...
  EXPECT_FALSE(Dominates(cset[0], b, region));
  EXPECT_FALSE(Dominates(cset[1], b, region));
  // ...but each dominates its half.
  Rect south = region, north = region;
  south.set_hi(1, 50);
  north.set_lo(1, 50);
  EXPECT_TRUE(Dominates(cset[0], b, south));
  EXPECT_TRUE(Dominates(cset[1], b, north));
  // The adaptive cover proves coverage after one split.
  PartitionStats stats;
  EXPECT_TRUE(ProvenOutsidePVCell(region, b, cset, 16, &stats));
  EXPECT_GT(stats.splits, 0);
}

TEST(RegionPartitionTest, BudgetExhaustionIsConservative) {
  Rect b(Point{65, 49}, Point{67, 51});
  std::vector<Rect> cset{Rect(Point{49, 39}, Point{51, 41}),
                         Rect(Point{49, 59}, Point{51, 61})};
  Rect region(Point{50, 40}, Point{52, 60});
  // Budget 1: cannot split, must fail (conservatively).
  EXPECT_FALSE(ProvenOutsidePVCell(region, b, cset, 1));
}

TEST(RegionPartitionTest, RegionTouchingCellNeverProvenOutside) {
  // The region contains u(o) itself, which is always inside V(o) (Lemma 5):
  // no budget can prove it outside.
  Rect o(Point{50, 50}, Point{52, 52});
  std::vector<Rect> cset{Rect(Point{10, 10}, Point{12, 12}),
                         Rect(Point{90, 90}, Point{92, 92})};
  Rect region(Point{45, 45}, Point{55, 55});
  EXPECT_FALSE(ProvenOutsidePVCell(region, o, cset, 4096));
}

TEST(RegionPartitionTest, OverlappingCandidatesAreSkipped) {
  // A candidate overlapping u(o) must not discharge anything (Lemma 2).
  Rect o(Point{50, 50}, Point{52, 52});
  std::vector<Rect> cset{Rect(Point{49, 49}, Point{53, 53})};  // overlaps o
  Rect region(Point{0, 0}, Point{10, 10});
  EXPECT_FALSE(ProvenOutsidePVCell(region, o, cset, 64));
}

// Conservativeness under randomization: whenever the test proves a region
// outside, no sampled point of the region may satisfy PointPossiblyNearest.
TEST(RegionPartitionTest, ProvenOutsideImpliesNoPossiblyNearestPoint) {
  Rng rng(77);
  const int dim = 3;
  for (int trial = 0; trial < 60; ++trial) {
    const Rect o = RandomRect(&rng, dim, 0, 100, 3);
    std::vector<Rect> cset;
    for (int i = 0; i < 25; ++i) cset.push_back(RandomRect(&rng, dim, 0, 100, 3));
    const Rect region = RandomRect(&rng, dim, 0, 100, 12);
    if (!ProvenOutsidePVCell(region, o, cset, 32)) continue;
    for (int s = 0; s < 300; ++s) {
      const Point p = RandomPointIn(&rng, region);
      EXPECT_FALSE(PointPossiblyNearest(o, cset, p))
          << "proven-outside region contained a possibly-nearest point";
    }
  }
}

}  // namespace
}  // namespace pvdb::geom
