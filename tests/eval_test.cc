// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Tests for the experiment harness: Table I parameter scaling, workload
// generation, report formatting, and the PNNQ runner's accounting.

#include <gtest/gtest.h>

#include <sstream>

#include "src/eval/params.h"
#include "src/eval/report.h"
#include "src/eval/workload.h"
#include "src/pv/pv_index.h"
#include "src/uncertain/datagen.h"

namespace pvdb::eval {
namespace {

TEST(ParamsTest, PaperScaleMatchesTable1) {
  const TableIParams p = ParamsForScale(Scale::kPaper);
  EXPECT_EQ(p.db_sizes,
            (std::vector<size_t>{20000, 40000, 60000, 80000, 100000}));
  EXPECT_EQ(p.default_db_size, 20000u);
  EXPECT_EQ(p.dims, (std::vector<int>{2, 3, 4, 5}));
  EXPECT_EQ(p.default_dim, 3);
  EXPECT_EQ(p.default_u_size, 20);
  EXPECT_EQ(p.default_delta, 1);
  EXPECT_EQ(p.default_mmax, 10);
  EXPECT_EQ(p.default_k, 200);
  EXPECT_EQ(p.default_k_partition, 10);
  EXPECT_EQ(p.k_global, 200);
  EXPECT_EQ(p.samples_per_object, 500);
  EXPECT_EQ(p.queries_per_point, 50);
}

TEST(ParamsTest, ScalesAreOrdered) {
  const auto smoke = ParamsForScale(Scale::kSmoke);
  const auto laptop = ParamsForScale(Scale::kLaptop);
  const auto paper = ParamsForScale(Scale::kPaper);
  EXPECT_LT(smoke.default_db_size, laptop.default_db_size);
  EXPECT_LT(laptop.default_db_size, paper.default_db_size);
  EXPECT_LT(smoke.real_scale, paper.real_scale);
}

TEST(ParamsTest, ScaleNames) {
  EXPECT_STREQ(ScaleName(Scale::kSmoke), "smoke");
  EXPECT_STREQ(ScaleName(Scale::kLaptop), "laptop");
  EXPECT_STREQ(ScaleName(Scale::kPaper), "paper");
}

TEST(ReportTest, TableFormatsAligned) {
  Table t("Demo", {"col", "value"});
  t.AddRow({"a", "1.00"});
  t.AddRow({"long-name", "2.50"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("== Demo =="), std::string::npos);
  EXPECT_NE(out.find("long-name"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(ReportTest, Formatters) {
  EXPECT_EQ(Table::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Fmt(2.0, 0), "2");
  EXPECT_EQ(Table::FmtCount(1234.0), "1234");
}

TEST(WorkloadTest, DeterministicAndInDomain) {
  const geom::Rect domain = geom::Rect::Cube(3, 0, 500);
  const QueryWorkload a = MakeQueryWorkload(domain, 100, 9);
  const QueryWorkload b = MakeQueryWorkload(domain, 100, 9);
  ASSERT_EQ(a.points.size(), 100u);
  for (size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i], b.points[i]);
    EXPECT_TRUE(domain.Contains(a.points[i]));
  }
  const QueryWorkload c = MakeQueryWorkload(domain, 100, 10);
  int same = 0;
  for (size_t i = 0; i < c.points.size(); ++i) same += a.points[i] == c.points[i];
  EXPECT_LT(same, 3);
}

TEST(RunnerTest, CostsAccountedAndConsistent) {
  uncertain::SyntheticOptions synth;
  synth.dim = 3;
  synth.count = 300;
  synth.samples_per_object = 50;
  synth.seed = 77;
  const auto db = uncertain::GenerateSynthetic(synth);
  storage::InMemoryPager pager;
  auto index = pv::PvIndex::Build(db, &pager, pv::PvIndexOptions{});
  ASSERT_TRUE(index.ok());
  rtree::RStarTree region_tree = BuildRegionTree(db);

  const QueryWorkload workload = MakeQueryWorkload(db.domain(), 30, 5);
  PnnqRunner runner(&db);
  const QueryCost pv_cost = runner.RunPvIndex(*index.value(), workload);
  const QueryCost rt_cost = runner.RunRTree(region_tree, workload);

  for (const QueryCost& c : {pv_cost, rt_cost}) {
    EXPECT_GT(c.t_query_ms, 0.0);
    EXPECT_NEAR(c.t_query_ms, c.t_or_ms + c.t_pc_ms, 1e-9);
    EXPECT_GE(c.candidates, c.answers);
    EXPECT_GE(c.candidates, 1.0);
    EXPECT_GT(c.io_or_pages, 0.0);
    EXPECT_GT(c.io_pc_pages, 0.0);
  }
  // Identical candidate/answer counts: both Step-1 methods return the same
  // pruned set, and Step 2 is shared.
  EXPECT_DOUBLE_EQ(pv_cost.candidates, rt_cost.candidates);
  EXPECT_DOUBLE_EQ(pv_cost.answers, rt_cost.answers);
  // PC I/O charge identical by construction (Figure 9(b) equality).
  EXPECT_DOUBLE_EQ(pv_cost.io_pc_pages, rt_cost.io_pc_pages);
}

TEST(RunnerTest, BuildRegionTreeIndexesAllObjects) {
  uncertain::SyntheticOptions synth;
  synth.dim = 2;
  synth.count = 120;
  synth.samples_per_object = 3;
  const auto db = uncertain::GenerateSynthetic(synth);
  const rtree::RStarTree tree = BuildRegionTree(db);
  EXPECT_EQ(tree.size(), db.size());
  EXPECT_TRUE(tree.CheckInvariants());
}

}  // namespace
}  // namespace pvdb::eval
