// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// The crash-safety property of pv::LiveIndex, proven rather than argued:
// for every crash point — after each acknowledged mutation, mid-record in
// the WAL tail, mid-seal, mid-manifest-replace — the recovered index is
// BIT-IDENTICAL to a reference index rebuilt from exactly the
// acknowledged-durable prefix of the mutation stream. "Bit-identical" means
// the same object ids, the same serialized object bytes, and the same
// PNNQ Step-1 answers over a panel of probe points.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "src/common/check.h"
#include "src/common/random.h"
#include "src/pv/live_index.h"
#include "src/pv/pv_index_builder.h"
#include "src/service/query_engine.h"
#include "src/storage/env.h"
#include "src/storage/fault_env.h"
#include "src/storage/wal.h"
#include "src/uncertain/datagen.h"

namespace pvdb {
namespace {

using pv::LiveIndex;
using pv::LiveIndexOptions;
using pv::LiveRecoveryStats;
using storage::Env;
using storage::FaultInjectionEnv;
using uncertain::Dataset;
using uncertain::ObjectId;
using uncertain::UncertainObject;

struct ScratchDir {
  explicit ScratchDir(const std::string& name)
      : path(::testing::TempDir() + "pvdb_" + name + "_" +
             std::to_string(::getpid())) {
    RemoveAll();
    PVDB_CHECK(Env::Default()->CreateDirIfMissing(path).ok());
  }
  ~ScratchDir() { RemoveAll(); }
  void RemoveAll() {
    auto children = Env::Default()->GetChildren(path);
    if (children.ok()) {
      for (const std::string& name : children.value()) {
        std::remove((path + "/" + name).c_str());
      }
    }
    ::rmdir(path.c_str());
  }
  std::string path;
};

Dataset BaseDataset() {
  uncertain::SyntheticOptions opts;
  opts.dim = 2;
  opts.count = 24;
  opts.samples_per_object = 6;
  opts.seed = 42;
  return uncertain::GenerateSynthetic(opts);
}

/// One acknowledged mutation of the deterministic workload.
struct Op {
  bool is_insert;
  UncertainObject object;  // is_insert only
  ObjectId id;             // delete target (== object.id() for inserts)
};

/// A deterministic interleaving of inserts (fresh ids from 100000) and
/// deletes (of ids live at that point), seeded so every test and its
/// reference replay the exact same stream.
std::vector<Op> MakeOps(const Dataset& base, int n) {
  Rng rng(1234);
  std::vector<ObjectId> live = base.Ids();
  std::vector<Op> ops;
  for (int i = 0; i < n; ++i) {
    const bool do_delete = (i % 4 == 3) && !live.empty();
    if (do_delete) {
      const size_t pick = static_cast<size_t>(rng.NextBounded(live.size()));
      const ObjectId id = live[pick];
      live.erase(live.begin() + static_cast<long>(pick));
      ops.push_back(Op{false, UncertainObject(id, geom::Rect(2), {}), id});
    } else {
      const ObjectId id = 100000 + static_cast<ObjectId>(i);
      geom::Point center{rng.NextUniform(100.0, 9900.0),
                         rng.NextUniform(100.0, 9900.0)};
      geom::Point half{rng.NextUniform(1.0, 15.0), rng.NextUniform(1.0, 15.0)};
      const geom::Rect region = geom::Rect::FromCenterHalfWidths(center, half);
      ops.push_back(Op{true, UncertainObject::UniformSampled(id, region,
                                                             /*n=*/6, &rng),
                       id});
      live.push_back(id);
    }
  }
  return ops;
}

/// The reference: the first `k` ops applied directly to a plain Dataset.
Dataset ReferenceAfter(const Dataset& base, const std::vector<Op>& ops,
                       size_t k) {
  Dataset db = base;
  for (size_t i = 0; i < k; ++i) {
    if (ops[i].is_insert) {
      PVDB_CHECK(db.Add(ops[i].object).ok());
    } else {
      PVDB_CHECK(db.Remove(ops[i].id).ok());
    }
  }
  return db;
}

std::vector<geom::Point> ProbePoints() {
  Rng rng(777);
  std::vector<geom::Point> probes;
  for (int i = 0; i < 16; ++i) {
    probes.push_back(geom::Point{rng.NextUniform(0.0, 10000.0),
                                 rng.NextUniform(0.0, 10000.0)});
  }
  return probes;
}

std::vector<uint8_t> ObjectBytes(const UncertainObject& o) {
  std::vector<uint8_t> bytes;
  o.AppendTo(&bytes);
  return bytes;
}

/// The bit-identity check: `live` must hold exactly the objects of
/// `expected` (same bytes) and answer PNNQ Step 1 identically to a fresh
/// index built over `expected`.
void ExpectEquivalent(const LiveIndex& live, const Dataset& expected,
                      const std::string& label) {
  SCOPED_TRACE(label);
  std::vector<ObjectId> live_ids = live.db().Ids();
  std::vector<ObjectId> want_ids = expected.Ids();
  std::sort(live_ids.begin(), live_ids.end());
  std::sort(want_ids.begin(), want_ids.end());
  ASSERT_EQ(live_ids, want_ids);
  for (ObjectId id : want_ids) {
    const UncertainObject* got = live.db().Find(id);
    const UncertainObject* want = expected.Find(id);
    ASSERT_NE(got, nullptr);
    ASSERT_NE(want, nullptr);
    EXPECT_EQ(ObjectBytes(*got), ObjectBytes(*want)) << "id=" << id;
  }
  auto reference = pv::PvIndexBuilder::Build(expected);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  for (const geom::Point& q : ProbePoints()) {
    auto got = live.index().QueryPossibleNN(q);
    auto want = reference.value()->index().QueryPossibleNN(q);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    std::vector<ObjectId> g = got.value();
    std::vector<ObjectId> w = want.value();
    std::sort(g.begin(), g.end());
    std::sort(w.begin(), w.end());
    EXPECT_EQ(g, w) << "probe " << q.ToString();
  }
}

Status ApplyOp(LiveIndex* live, const Op& op) {
  return op.is_insert ? live->Insert(op.object) : live->Delete(op.id);
}

// ---------------------------------------------------------------------------
// Bootstrap + clean restart
// ---------------------------------------------------------------------------

TEST(LiveIndexTest, BootstrapThenCleanReopen) {
  ScratchDir dir("live_bootstrap");
  const Dataset base = BaseDataset();
  LiveRecoveryStats stats;
  {
    auto live = LiveIndex::Open(Env::Default(), dir.path, base, {}, &stats);
    ASSERT_TRUE(live.ok()) << live.status().ToString();
    EXPECT_FALSE(stats.recovered);
    EXPECT_NE(live.value()->CurrentSnapshot(), nullptr);
    EXPECT_EQ(live.value()->generation(), 1u);
    ExpectEquivalent(*live.value(), base, "freshly bootstrapped");
  }
  auto live = LiveIndex::Open(Env::Default(), dir.path, base, {}, &stats);
  ASSERT_TRUE(live.ok()) << live.status().ToString();
  EXPECT_TRUE(stats.recovered);
  EXPECT_EQ(stats.base_objects, base.size());
  EXPECT_EQ(stats.wal_records_applied, 0u);
  ExpectEquivalent(*live.value(), base, "reopened untouched");
}

TEST(LiveIndexTest, MutationsSurviveCleanClose) {
  ScratchDir dir("live_clean");
  const Dataset base = BaseDataset();
  const std::vector<Op> ops = MakeOps(base, 12);
  {
    auto live = LiveIndex::Open(Env::Default(), dir.path, base).value();
    for (const Op& op : ops) {
      ASSERT_TRUE(ApplyOp(live.get(), op).ok());
    }
    EXPECT_EQ(live->last_seq(), ops.size());
    ExpectEquivalent(*live, ReferenceAfter(base, ops, ops.size()),
                     "before close");
  }
  LiveRecoveryStats stats;
  auto live = LiveIndex::Open(Env::Default(), dir.path, base, {}, &stats);
  ASSERT_TRUE(live.ok()) << live.status().ToString();
  EXPECT_TRUE(stats.recovered);
  EXPECT_EQ(stats.wal_records_applied, ops.size());
  EXPECT_FALSE(stats.wal_tail_corrupt);
  ExpectEquivalent(*live.value(), ReferenceAfter(base, ops, ops.size()),
                   "after clean reopen");
}

TEST(LiveIndexTest, ValidationFailuresNeverReachTheLog) {
  ScratchDir dir("live_validation");
  const Dataset base = BaseDataset();
  auto live = LiveIndex::Open(Env::Default(), dir.path, base).value();
  // Duplicate id: rejected before the WAL.
  EXPECT_FALSE(live->Insert(base.objects()[0]).ok());
  // Out-of-domain region: rejected before the WAL.
  const geom::Rect escaped = geom::Rect(geom::Point{-50.0, 0.0},
                                        geom::Point{10.0, 10.0});
  Rng rng(5);
  EXPECT_FALSE(
      live->Insert(UncertainObject::UniformSampled(200000, escaped, 4, &rng))
          .ok());
  // Unknown delete id: rejected before the WAL.
  EXPECT_FALSE(live->Delete(999999).ok());
  // Nothing was acknowledged, so nothing replays.
  EXPECT_EQ(live->last_seq(), 0u);
  ExpectEquivalent(*live, base, "after rejected mutations");
}

// ---------------------------------------------------------------------------
// Crash matrix: power loss after every acknowledged mutation
// ---------------------------------------------------------------------------

TEST(LiveIndexTest, CrashAfterEveryAckedMutationRecoversExactly) {
  const Dataset base = BaseDataset();
  const std::vector<Op> ops = MakeOps(base, 10);
  for (size_t k = 0; k <= ops.size(); ++k) {
    ScratchDir dir("live_crash_k" + std::to_string(k));
    FaultInjectionEnv fenv(Env::Default());
    LiveIndexOptions opts;
    opts.wal.sync_every_n = 1;  // every ack is durable
    {
      auto live = LiveIndex::Open(&fenv, dir.path, base, opts).value();
      for (size_t i = 0; i < k; ++i) {
        ASSERT_TRUE(ApplyOp(live.get(), ops[i]).ok());
      }
      // Power loss NOW: unsynced data and un-fsync'd dirents vanish. The
      // destructor afterwards models the dead process's fds going away.
      ASSERT_TRUE(fenv.SimulateCrash().ok());
    }
    LiveRecoveryStats stats;
    auto live = LiveIndex::Open(Env::Default(), dir.path, base, {}, &stats);
    ASSERT_TRUE(live.ok()) << "k=" << k << ": " << live.status().ToString();
    EXPECT_TRUE(stats.recovered) << "k=" << k;
    EXPECT_EQ(stats.wal_records_applied, k) << "k=" << k;
    ExpectEquivalent(*live.value(), ReferenceAfter(base, ops, k),
                     "crash after op " + std::to_string(k));
  }
}

TEST(LiveIndexTest, GroupCommitCrashLosesAtMostTheUnsyncedTail) {
  ScratchDir dir("live_group");
  const Dataset base = BaseDataset();
  const std::vector<Op> ops = MakeOps(base, 10);
  FaultInjectionEnv fenv(Env::Default());
  LiveIndexOptions opts;
  opts.wal.sync_every_n = 4;
  uint64_t durable = 0;
  {
    auto live = LiveIndex::Open(&fenv, dir.path, base, opts).value();
    for (const Op& op : ops) ASSERT_TRUE(ApplyOp(live.get(), op).ok());
    durable = live->wal_synced_records();
    EXPECT_EQ(durable, 8u);  // 10 acked, floor at the last group of 4
    ASSERT_TRUE(fenv.SimulateCrash().ok());
  }
  LiveRecoveryStats stats;
  auto live = LiveIndex::Open(Env::Default(), dir.path, base, {}, &stats);
  ASSERT_TRUE(live.ok()) << live.status().ToString();
  // Exactly the durable floor survived: a whole-record prefix, never a
  // torn half-apply.
  EXPECT_EQ(stats.wal_records_applied, durable);
  EXPECT_FALSE(stats.wal_tail_corrupt);
  ExpectEquivalent(*live.value(), ReferenceAfter(base, ops, durable),
                   "group-commit crash");
}

// ---------------------------------------------------------------------------
// Crash matrix: torn WAL tails at arbitrary byte offsets
// ---------------------------------------------------------------------------

TEST(LiveIndexTest, TornWalTailRecoversTheWholeRecordPrefix) {
  ScratchDir dir("live_torn_src");
  const Dataset base = BaseDataset();
  const std::vector<Op> ops = MakeOps(base, 6);
  {
    auto live = LiveIndex::Open(Env::Default(), dir.path, base).value();
    for (const Op& op : ops) ASSERT_TRUE(ApplyOp(live.get(), op).ok());
  }
  // Scan the closed log for its record boundaries.
  const std::string wal_path = dir.path + "/wal-1.log";
  std::vector<uint8_t> wal_bytes;
  ASSERT_TRUE(Env::Default()->ReadFile(wal_path, &wal_bytes).ok());
  std::vector<size_t> boundaries = {storage::kWalFileHeaderBytes};
  {
    size_t off = storage::kWalFileHeaderBytes;
    while (off < wal_bytes.size()) {
      uint32_t len = 0;
      std::memcpy(&len, wal_bytes.data() + off, sizeof(len));
      off += storage::kWalRecordHeaderBytes + len;
      boundaries.push_back(off);
    }
    ASSERT_EQ(boundaries.size(), ops.size() + 1);
    ASSERT_EQ(boundaries.back(), wal_bytes.size());
  }

  // For every record: cut exactly at its start, one byte in, mid-payload,
  // and one byte short of its end — a power loss tearing that append.
  Env* env = Env::Default();
  for (size_t r = 0; r < ops.size(); ++r) {
    const size_t lo = boundaries[r];
    const size_t hi = boundaries[r + 1];
    for (size_t cut : {lo, lo + 1, (lo + hi) / 2, hi - 1}) {
      ScratchDir crash_dir("live_torn_cut" + std::to_string(cut));
      auto children = env->GetChildren(dir.path);
      ASSERT_TRUE(children.ok()) << children.status().ToString();
      for (const std::string& name : children.value()) {
        std::vector<uint8_t> bytes;
        ASSERT_TRUE(env->ReadFile(dir.path + "/" + name, &bytes).ok());
        ASSERT_TRUE(storage::WriteFileAtomic(env, crash_dir.path + "/" + name,
                                             bytes)
                        .ok());
      }
      ASSERT_TRUE(
          env->TruncateFile(crash_dir.path + "/wal-1.log", cut).ok());

      LiveRecoveryStats stats;
      auto live = LiveIndex::Open(env, crash_dir.path, base, {}, &stats);
      ASSERT_TRUE(live.ok())
          << "cut=" << cut << ": " << live.status().ToString();
      EXPECT_EQ(stats.wal_records_applied, r) << "cut=" << cut;
      EXPECT_EQ(stats.wal_tail_corrupt, cut != lo) << "cut=" << cut;
      if (cut != lo) {
        EXPECT_EQ(stats.wal_bytes_dropped, cut - lo) << "cut=" << cut;
        EXPECT_FALSE(stats.wal_tail_detail.empty()) << "cut=" << cut;
      }
      ExpectEquivalent(*live.value(), ReferenceAfter(base, ops, r),
                       "torn tail at byte " + std::to_string(cut));

      // The recovered index keeps working: it repaired the tail and can
      // acknowledge new mutations on top of the surviving prefix.
      ASSERT_TRUE(live.value()->Delete(base.Ids()[0]).ok());
    }
  }
}

TEST(LiveIndexTest, FlippedWalByteStopsReplayBeforeTheLie) {
  ScratchDir dir("live_flip");
  const Dataset base = BaseDataset();
  const std::vector<Op> ops = MakeOps(base, 5);
  {
    auto live = LiveIndex::Open(Env::Default(), dir.path, base).value();
    for (const Op& op : ops) ASSERT_TRUE(ApplyOp(live.get(), op).ok());
  }
  // Corrupt one payload byte of the 3rd record (media error, not a tear).
  const std::string wal_path = dir.path + "/wal-1.log";
  std::vector<uint8_t> wal_bytes;
  ASSERT_TRUE(Env::Default()->ReadFile(wal_path, &wal_bytes).ok());
  size_t off = storage::kWalFileHeaderBytes;
  for (int r = 0; r < 2; ++r) {
    uint32_t len = 0;
    std::memcpy(&len, wal_bytes.data() + off, sizeof(len));
    off += storage::kWalRecordHeaderBytes + len;
  }
  FaultInjectionEnv fenv(Env::Default());
  ASSERT_TRUE(
      fenv.FlipByte(wal_path, off + storage::kWalRecordHeaderBytes + 3).ok());

  LiveRecoveryStats stats;
  auto live = LiveIndex::Open(Env::Default(), dir.path, base, {}, &stats);
  ASSERT_TRUE(live.ok()) << live.status().ToString();
  EXPECT_EQ(stats.wal_records_applied, 2u);
  EXPECT_TRUE(stats.wal_tail_corrupt);
  ExpectEquivalent(*live.value(), ReferenceAfter(base, ops, 2),
                   "bit flip in record 3");
}

// ---------------------------------------------------------------------------
// Delta seals + compaction
// ---------------------------------------------------------------------------

TEST(LiveIndexTest, AutoSealsCheckpointAndTruncateTheWal) {
  ScratchDir dir("live_seal");
  const Dataset base = BaseDataset();
  const std::vector<Op> ops = MakeOps(base, 17);
  LiveIndexOptions opts;
  opts.delta_seal_every_n = 5;
  {
    auto live = LiveIndex::Open(Env::Default(), dir.path, base, opts).value();
    for (const Op& op : ops) ASSERT_TRUE(ApplyOp(live.get(), op).ok());
    EXPECT_TRUE(live->last_seal_status().ok())
        << live->last_seal_status().ToString();
    EXPECT_EQ(live->delta_seq(), 3u);  // seals at 5, 10, 15
    EXPECT_EQ(live->records_since_checkpoint(), 2u);
    ExpectEquivalent(*live, ReferenceAfter(base, ops, ops.size()),
                     "after auto seals");
  }
  // Recovery path: base + delta + WAL suffix, not a full log replay.
  LiveRecoveryStats stats;
  auto live = LiveIndex::Open(Env::Default(), dir.path, base, opts, &stats);
  ASSERT_TRUE(live.ok()) << live.status().ToString();
  EXPECT_GT(stats.delta_upserts + stats.delta_deletes, 0u);
  EXPECT_EQ(stats.wal_records_applied, 2u);  // only the post-seal suffix
  ExpectEquivalent(*live.value(), ReferenceAfter(base, ops, ops.size()),
                   "recovered through delta");
}

TEST(LiveIndexTest, CrashBetweenSealsRecoversAckedPrefix) {
  const Dataset base = BaseDataset();
  const std::vector<Op> ops = MakeOps(base, 13);
  for (size_t k : {5u, 6u, 11u, 13u}) {
    ScratchDir dir("live_sealcrash_k" + std::to_string(k));
    FaultInjectionEnv fenv(Env::Default());
    LiveIndexOptions opts;
    opts.wal.sync_every_n = 1;
    opts.delta_seal_every_n = 5;
    {
      auto live = LiveIndex::Open(&fenv, dir.path, base, opts).value();
      for (size_t i = 0; i < k; ++i) {
        ASSERT_TRUE(ApplyOp(live.get(), ops[i]).ok());
      }
      ASSERT_TRUE(fenv.SimulateCrash().ok());
    }
    auto live = LiveIndex::Open(Env::Default(), dir.path, base, opts);
    ASSERT_TRUE(live.ok()) << "k=" << k << ": " << live.status().ToString();
    ExpectEquivalent(*live.value(), ReferenceAfter(base, ops, k),
                     "crash between seals, k=" + std::to_string(k));
  }
}

TEST(LiveIndexTest, CompactionPublishesANewGeneration) {
  ScratchDir dir("live_compact");
  const Dataset base = BaseDataset();
  const std::vector<Op> ops = MakeOps(base, 12);
  std::vector<std::shared_ptr<const pv::IndexSnapshot>> published;
  LiveIndexOptions opts;
  opts.publish = [&](std::shared_ptr<const pv::IndexSnapshot> snap) {
    published.push_back(std::move(snap));
  };
  {
    auto live = LiveIndex::Open(Env::Default(), dir.path, base, opts).value();
    ASSERT_EQ(published.size(), 1u);  // the bootstrap base
    for (size_t i = 0; i < 7; ++i) {
      ASSERT_TRUE(ApplyOp(live.get(), ops[i]).ok());
    }
    ASSERT_TRUE(live->Compact().ok());
    EXPECT_EQ(live->generation(), 2u);
    EXPECT_EQ(live->records_since_checkpoint(), 0u);
    ASSERT_EQ(published.size(), 2u);
    // The published snapshot covers exactly the compacted state.
    EXPECT_EQ(published[1]->object_count(),
              ReferenceAfter(base, ops, 7).size());
    // Ingest continues on top of the new generation.
    for (size_t i = 7; i < ops.size(); ++i) {
      ASSERT_TRUE(ApplyOp(live.get(), ops[i]).ok());
    }
    ExpectEquivalent(*live, ReferenceAfter(base, ops, ops.size()),
                     "after compaction + more ops");
    // The old generation's files are gone.
    EXPECT_FALSE(Env::Default()->FileExists(dir.path + "/base-1.snap"));
  }
  auto live = LiveIndex::Open(Env::Default(), dir.path, base, opts);
  ASSERT_TRUE(live.ok()) << live.status().ToString();
  EXPECT_EQ(live.value()->generation(), 2u);
  ExpectEquivalent(*live.value(), ReferenceAfter(base, ops, ops.size()),
                   "reopened after compaction");
}

TEST(LiveIndexTest, BackgroundCompactionAdoptsIntoQueryEngine) {
  ScratchDir dir("live_bg");
  const Dataset base = BaseDataset();
  const std::vector<Op> ops = MakeOps(base, 20);
  std::unique_ptr<service::QueryEngine> engine;
  std::mutex adopt_mu;
  LiveIndexOptions opts;
  opts.background_compaction = true;
  opts.compact_after_records = 8;
  opts.publish = [&](std::shared_ptr<const pv::IndexSnapshot> snap) {
    // The live-serving wiring the header documents: each published
    // generation flips serving traffic without draining queries.
    std::lock_guard<std::mutex> lock(adopt_mu);
    if (engine == nullptr) {
      engine = service::QueryEngine::CreateFromSnapshot(
                   std::move(snap), service::QueryEngineOptions{.threads = 2})
                   .value();
    } else {
      PVDB_CHECK(engine->AdoptSnapshot(std::move(snap)).ok());
    }
  };
  auto live = LiveIndex::Open(Env::Default(), dir.path, base, opts).value();
  ASSERT_NE(engine, nullptr);
  for (const Op& op : ops) ASSERT_TRUE(ApplyOp(live.get(), op).ok());
  ASSERT_TRUE(live->WaitForCompaction().ok())
      << live->WaitForCompaction().ToString();
  EXPECT_GE(live->generation(), 2u);
  ExpectEquivalent(*live, ReferenceAfter(base, ops, ops.size()),
                   "after background compactions");
  // The engine serves the latest adopted generation; every Step-2 answer
  // it produces comes from that snapshot's Step-1 candidate set.
  auto snap = engine->snapshot();
  ASSERT_NE(snap, nullptr);
  const geom::Point q = ProbePoints()[0];
  auto candidates = snap->QueryPossibleNN(q);
  ASSERT_TRUE(candidates.ok()) << candidates.status().ToString();
  auto batch = engine->ExecuteBatch(
      service::PnnRequests(std::span<const geom::Point>(&q, 1)));
  ASSERT_EQ(batch.size(), 1u);
  ASSERT_TRUE(batch[0].status.ok()) << batch[0].status.ToString();
  EXPECT_FALSE(batch[0].results.empty());
  for (const pv::PnnResult& r : batch[0].results) {
    EXPECT_NE(std::find(candidates.value().begin(), candidates.value().end(),
                        r.id),
              candidates.value().end())
        << "answered id " << r.id << " is not a Step-1 candidate";
  }
}

// ---------------------------------------------------------------------------
// Graceful degradation + the seal/compaction failure matrix
// ---------------------------------------------------------------------------

TEST(LiveIndexTest, FailedSealDegradesWithoutStateChange) {
  ScratchDir dir("live_sealfail");
  const Dataset base = BaseDataset();
  const std::vector<Op> ops = MakeOps(base, 6);
  FaultInjectionEnv fenv(Env::Default());
  auto live = LiveIndex::Open(&fenv, dir.path, base).value();
  for (const Op& op : ops) ASSERT_TRUE(ApplyOp(live.get(), op).ok());

  // The disk dies at the seal's FIRST write (the delta temp file): the
  // seal fails before any rotation, leaving the index fully serviceable.
  fenv.SetOpBudget(0);
  const Status seal = live->SealDelta();
  ASSERT_FALSE(seal.ok());
  EXPECT_NE(seal.message().find("injected fault"), std::string::npos)
      << seal.ToString();
  EXPECT_EQ(live->delta_seq(), 0u);
  EXPECT_EQ(live->records_since_checkpoint(), ops.size());
  ExpectEquivalent(*live, ReferenceAfter(base, ops, ops.size()),
                   "after failed seal");

  // While the disk is dead, mutations fail WITHOUT state change (the WAL
  // append is refused, so nothing is acknowledged).
  const size_t before = live->db().size();
  EXPECT_FALSE(live->Delete(base.Ids()[0]).ok());
  EXPECT_EQ(live->db().size(), before);
  EXPECT_EQ(live->last_seq(), ops.size());

  // The disk recovers: the retried seal succeeds and ingest resumes.
  fenv.ClearOpBudget();
  ASSERT_TRUE(live->SealDelta().ok());
  EXPECT_EQ(live->delta_seq(), 1u);
  EXPECT_EQ(live->records_since_checkpoint(), 0u);
  ASSERT_TRUE(live->Delete(base.Ids()[0]).ok());
}

TEST(LiveIndexTest, FailedCompactionKeepsServingTheOldGeneration) {
  ScratchDir dir("live_compactfail");
  const Dataset base = BaseDataset();
  const std::vector<Op> ops = MakeOps(base, 6);
  FaultInjectionEnv fenv(Env::Default());
  int published = 0;
  LiveIndexOptions opts;
  opts.publish = [&](std::shared_ptr<const pv::IndexSnapshot>) {
    ++published;
  };
  auto live = LiveIndex::Open(&fenv, dir.path, base, opts).value();
  for (const Op& op : ops) ASSERT_TRUE(ApplyOp(live.get(), op).ok());
  const auto serving_before = live->CurrentSnapshot();
  ASSERT_EQ(published, 1);

  fenv.SetOpBudget(0);  // the base-2 write fails immediately
  const Status st = live->Compact();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(live->generation(), 1u);
  EXPECT_EQ(live->CurrentSnapshot(), serving_before);  // still gen 1
  EXPECT_EQ(published, 1);
  ExpectEquivalent(*live, ReferenceAfter(base, ops, ops.size()),
                   "after failed compaction");

  fenv.ClearOpBudget();
  ASSERT_TRUE(live->Compact().ok());
  EXPECT_EQ(live->generation(), 2u);
  EXPECT_EQ(published, 2);
}

TEST(LiveIndexTest, SealFailureAtEverySyscallNeverLosesAckedData) {
  // The mid-manifest crash matrix: sweep an injected sticky disk failure
  // through EVERY syscall of a delta seal (delta write, WAL rotation,
  // CURRENT replace), then power-cycle. Whatever the failure point — clean
  // rollback, poisoned instance, or torn manifest replace — reopening must
  // recover every acknowledged mutation.
  const Dataset base = BaseDataset();
  const std::vector<Op> ops = MakeOps(base, 8);
  for (int64_t extra = 0; extra < 18; ++extra) {
    ScratchDir dir("live_sealsweep_" + std::to_string(extra));
    FaultInjectionEnv fenv(Env::Default());
    LiveIndexOptions opts;
    opts.wal.sync_every_n = 1;
    bool sealed = false;
    {
      auto live = LiveIndex::Open(&fenv, dir.path, base, opts).value();
      for (const Op& op : ops) ASSERT_TRUE(ApplyOp(live.get(), op).ok());
      fenv.SetOpBudget(extra);
      sealed = live->SealDelta().ok();
      ASSERT_TRUE(fenv.SimulateCrash().ok());
    }
    fenv.ClearOpBudget();
    LiveRecoveryStats stats;
    auto live = LiveIndex::Open(Env::Default(), dir.path, base, {}, &stats);
    ASSERT_TRUE(live.ok()) << "extra=" << extra << " sealed=" << sealed
                           << ": " << live.status().ToString();
    ExpectEquivalent(*live.value(), ReferenceAfter(base, ops, ops.size()),
                     "seal failure sweep, extra=" + std::to_string(extra));
  }
}

TEST(LiveIndexTest, CompactionFailureAtEverySyscallNeverLosesAckedData) {
  const Dataset base = BaseDataset();
  const std::vector<Op> ops = MakeOps(base, 8);
  for (int64_t extra = 0; extra < 18; ++extra) {
    ScratchDir dir("live_compactsweep_" + std::to_string(extra));
    FaultInjectionEnv fenv(Env::Default());
    LiveIndexOptions opts;
    opts.wal.sync_every_n = 1;
    bool compacted = false;
    {
      auto live = LiveIndex::Open(&fenv, dir.path, base, opts).value();
      for (const Op& op : ops) ASSERT_TRUE(ApplyOp(live.get(), op).ok());
      fenv.SetOpBudget(extra);
      compacted = live->Compact().ok();
      ASSERT_TRUE(fenv.SimulateCrash().ok());
    }
    fenv.ClearOpBudget();
    auto live = LiveIndex::Open(Env::Default(), dir.path, base, {});
    ASSERT_TRUE(live.ok()) << "extra=" << extra << " compacted=" << compacted
                           << ": " << live.status().ToString();
    ExpectEquivalent(*live.value(), ReferenceAfter(base, ops, ops.size()),
                     "compaction failure sweep, extra=" +
                         std::to_string(extra));
  }
}

}  // namespace
}  // namespace pvdb
