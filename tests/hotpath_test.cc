// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Hot-path refactor safety net: property tests pinning the batched SoA
// kernels (geom::MinDistSqBatch / MaxDistSqBatch), the block form of
// Step1PruneMinMax and the QueryScratch Step-2 path to their scalar /
// allocating reference implementations — bit-identical, not approximately
// equal — plus octree leaf-block decode consistency, cross-backend Step-1
// parity (PV = UV = R-tree = brute force) and the MetricRegistry counter
// handles.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <thread>
#include <vector>

#include "src/common/random.h"
#include "src/common/stats.h"
#include "src/geom/distance.h"
#include "src/geom/distance_batch.h"
#include "src/geom/simd_dispatch.h"
#include "src/pv/pnnq.h"
#include "src/pv/pv_index.h"
#include "src/rtree/rstar_tree.h"
#include "src/rtree/rtree_pnn.h"
#include "src/storage/pager.h"
#include "src/uncertain/datagen.h"
#include "src/uv/uv_index.h"

namespace pvdb {
namespace {

// ---------------------------------------------------------------------------
// SIMD dispatch: the env override must actually take. The CI simd-dispatch
// job reruns this whole binary with PVDB_SIMD_LEVEL forced to each level —
// every batch-kernel comparison below then exercises that level's code —
// and this test is the proof the forcing worked (a typo'd level name or a
// broken resolver would otherwise fall back silently and the matrix would
// go green without testing anything).
// ---------------------------------------------------------------------------

TEST(SimdDispatchEnvTest, EnvForcedLevelIsActive) {
  const char* env = std::getenv("PVDB_SIMD_LEVEL");
  if (env == nullptr) {
    GTEST_SKIP() << "PVDB_SIMD_LEVEL not set; active level is "
                 << geom::SimdLevelName(geom::ActiveSimdLevel());
  }
  geom::SimdLevel parsed;
  ASSERT_TRUE(geom::ParseSimdLevel(env, &parsed))
      << "PVDB_SIMD_LEVEL='" << env << "' is not a level name";
  ASSERT_LE(parsed, geom::MaxUsableSimdLevel())
      << "CI must CPUID-gate levels the runner can't execute, not pass them "
         "through to be clamped";
  EXPECT_EQ(geom::ActiveSimdLevel(), parsed);
}

// ---------------------------------------------------------------------------
// Randomized and degenerate rect generators
// ---------------------------------------------------------------------------

geom::Rect RandomRect(Rng* rng, int dim, double domain, double max_extent) {
  geom::Point lo(dim), hi(dim);
  for (int d = 0; d < dim; ++d) {
    lo[d] = rng->NextUniform(0.0, domain - max_extent);
    hi[d] = lo[d] + rng->NextUniform(0.0, max_extent);
  }
  return geom::Rect(lo, hi);
}

/// Zero extent in every `flat_dims` randomly chosen dimensions (a
/// lower-dimensional slab; all dims flat = a point).
geom::Rect DegenerateRect(Rng* rng, int dim, double domain, int flat_dims) {
  geom::Rect r = RandomRect(rng, dim, domain, domain / 10.0);
  for (int k = 0; k < flat_dims; ++k) {
    const int d = static_cast<int>(rng->NextUniform(0, dim)) % dim;
    r.set_hi(d, r.lo(d));
  }
  return r;
}

geom::Point RandomPoint(Rng* rng, int dim, double domain) {
  geom::Point p(dim);
  for (int d = 0; d < dim; ++d) p[d] = rng->NextUniform(0.0, domain);
  return p;
}

// ---------------------------------------------------------------------------
// Batched kernels vs. scalar reference
// ---------------------------------------------------------------------------

void ExpectBatchMatchesScalar(const std::vector<geom::Rect>& rects,
                              const geom::Point& q) {
  ASSERT_FALSE(rects.empty());
  geom::RectSoA soa(rects[0].dim());
  soa.Reserve(rects.size());
  for (const geom::Rect& r : rects) soa.PushBack(r);

  std::vector<double> min_out(rects.size()), max_out(rects.size());
  geom::MinDistSqBatch(soa, q, min_out);
  geom::MaxDistSqBatch(soa, q, max_out);
  for (size_t i = 0; i < rects.size(); ++i) {
    // Bit-identical, not EXPECT_NEAR: both sides perform the same
    // per-dimension operations in the same accumulation order.
    EXPECT_EQ(min_out[i], geom::MinDistSq(rects[i], q)) << "rect " << i;
    EXPECT_EQ(max_out[i], geom::MaxDistSq(rects[i], q)) << "rect " << i;
  }
}

TEST(DistanceBatchTest, MatchesScalarOnRandomRects) {
  Rng rng(17);
  for (int dim : {2, 3, 5, geom::kMaxDim}) {
    for (int round = 0; round < 20; ++round) {
      std::vector<geom::Rect> rects;
      for (int i = 0; i < 64; ++i) {
        rects.push_back(RandomRect(&rng, dim, 1000.0, 120.0));
      }
      ExpectBatchMatchesScalar(rects, RandomPoint(&rng, dim, 1000.0));
    }
  }
}

TEST(DistanceBatchTest, MatchesScalarOnDegenerateRects) {
  Rng rng(23);
  for (int dim : {2, 3, 5}) {
    std::vector<geom::Rect> rects;
    for (int flat = 0; flat <= dim; ++flat) {
      for (int i = 0; i < 16; ++i) {
        rects.push_back(DegenerateRect(&rng, dim, 1000.0, flat));
      }
    }
    // Random probes plus adversarial ones: inside a rect, and exactly on
    // rect boundaries (distmin must be exactly 0 there).
    std::vector<geom::Point> probes;
    for (int i = 0; i < 8; ++i) probes.push_back(RandomPoint(&rng, dim, 1000.0));
    probes.push_back(rects[0].Center());               // strictly inside
    probes.push_back(rects[1].lo());                   // lo corner
    probes.push_back(rects[2].hi());                   // hi corner
    {
      geom::Point edge = rects[3].Center();            // on one face
      edge[0] = rects[3].lo(0);
      probes.push_back(edge);
    }
    for (const geom::Point& q : probes) ExpectBatchMatchesScalar(rects, q);
  }
}

TEST(DistanceBatchTest, QueryInsideRectHasZeroMinDist) {
  Rng rng(29);
  for (int round = 0; round < 50; ++round) {
    const geom::Rect r = RandomRect(&rng, 3, 1000.0, 200.0);
    geom::Point q(3);
    for (int d = 0; d < 3; ++d) q[d] = rng.NextUniform(r.lo(d), r.hi(d));
    geom::RectSoA soa(3);
    soa.PushBack(r);
    double out[1];
    geom::MinDistSqBatch(soa, q, std::span<double>(out, 1));
    EXPECT_EQ(out[0], 0.0);
  }
}

TEST(RectSoATest, RoundTripsRects) {
  Rng rng(31);
  geom::RectSoA soa(4);
  std::vector<geom::Rect> rects;
  for (int i = 0; i < 32; ++i) {
    rects.push_back(RandomRect(&rng, 4, 100.0, 10.0));
    soa.PushBack(rects.back());
  }
  ASSERT_EQ(soa.size(), rects.size());
  for (size_t i = 0; i < rects.size(); ++i) EXPECT_EQ(soa.At(i), rects[i]);
  soa.Reset(2);
  EXPECT_TRUE(soa.empty());
  EXPECT_EQ(soa.dim(), 2);
}

// ---------------------------------------------------------------------------
// Block Step-1 pruning vs. scalar reference
// ---------------------------------------------------------------------------

std::vector<pv::LeafEntry> RandomLeaf(Rng* rng, int dim, size_t n) {
  std::vector<pv::LeafEntry> entries;
  entries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    entries.push_back(pv::LeafEntry{1000 + i, RandomRect(rng, dim, 1000.0,
                                                         80.0)});
  }
  return entries;
}

TEST(Step1BlockTest, MatchesScalarOnRandomLeaves) {
  Rng rng(37);
  pv::QueryScratch scratch;  // deliberately reused across every iteration
  for (int dim : {2, 3, 5}) {
    for (size_t n : {1u, 2u, 7u, 64u, 257u}) {
      for (int round = 0; round < 10; ++round) {
        const auto entries = RandomLeaf(&rng, dim, n);
        const auto block =
            pv::LeafBlock::FromEntries(entries, dim);
        const geom::Point q = RandomPoint(&rng, dim, 1000.0);
        const auto scalar = pv::Step1PruneMinMax(entries, q);
        const auto batched = pv::Step1PruneMinMax(block, q, &scratch);
        EXPECT_EQ(batched, scalar) << "dim=" << dim << " n=" << n;
        // Null scratch allocates locally; same answer.
        EXPECT_EQ(pv::Step1PruneMinMax(block, q, nullptr), scalar);
      }
    }
  }
}

TEST(Step1BlockTest, MatchesScalarOnDegenerateLeaves) {
  Rng rng(41);
  pv::QueryScratch scratch;
  // Zero-extent regions (points), identical regions, query on boundaries.
  std::vector<pv::LeafEntry> entries;
  for (size_t i = 0; i < 20; ++i) {
    entries.push_back(pv::LeafEntry{i, DegenerateRect(&rng, 2, 1000.0, 2)});
  }
  const geom::Rect shared = RandomRect(&rng, 2, 1000.0, 50.0);
  for (size_t i = 20; i < 30; ++i) {
    entries.push_back(pv::LeafEntry{i, shared});
  }
  const auto block = pv::LeafBlock::FromEntries(entries, 2);
  std::vector<geom::Point> probes{shared.Center(), shared.lo(), shared.hi(),
                                  entries[0].region.lo()};
  for (int i = 0; i < 16; ++i) probes.push_back(RandomPoint(&rng, 2, 1000.0));
  for (const geom::Point& q : probes) {
    EXPECT_EQ(pv::Step1PruneMinMax(block, q, &scratch),
              pv::Step1PruneMinMax(entries, q));
  }
}

TEST(Step1BlockTest, EmptyLeaf) {
  pv::LeafBlock block;
  block.Reset(3);
  pv::QueryScratch scratch;
  EXPECT_TRUE(pv::Step1PruneMinMax(block, geom::Point{1, 2, 3}, &scratch)
                  .empty());
}

// ---------------------------------------------------------------------------
// Octree leaf-block decode and cross-backend Step-1 parity
// ---------------------------------------------------------------------------

struct ParityWorld {
  ParityWorld() : db(MakeDb()) {
    pv_index = pv::PvIndex::Build(db, &pv_pager, {}).value();
    uv_index = uv::UvIndex::Build(db, &uv_pager, {}).value();
    rtree = std::make_unique<rtree::RStarTree>(2);
    for (const auto& o : db.objects()) rtree->Insert(o.region(), o.id());
  }

  static uncertain::Dataset MakeDb() {
    uncertain::SyntheticOptions synth;
    synth.dim = 2;
    synth.count = 300;
    synth.samples_per_object = 30;
    synth.max_region_extent = 120;
    synth.domain_hi = 1000;
    synth.seed = 93;
    return uncertain::GenerateSynthetic(synth);
  }

  uncertain::Dataset db;
  storage::InMemoryPager pv_pager;
  storage::InMemoryPager uv_pager;
  std::unique_ptr<pv::PvIndex> pv_index;
  std::unique_ptr<uv::UvIndex> uv_index;
  std::unique_ptr<rtree::RStarTree> rtree;
};

TEST(LeafBlockTest, OctreeBlockReadsMatchRowReads) {
  ParityWorld world;
  const auto& primary = world.pv_index->primary();
  Rng rng(47);
  for (int round = 0; round < 50; ++round) {
    const geom::Point q = RandomPoint(&rng, 2, 1000.0);
    const auto entries = primary.QueryPoint(q).value();
    const auto block = primary.QueryPointBlock(q).value();
    ASSERT_EQ(block.size(), entries.size());
    for (size_t i = 0; i < entries.size(); ++i) {
      EXPECT_EQ(block.ids[i], entries[i].id);
      EXPECT_EQ(block.rects.At(i), entries[i].region);
    }
    // FindLeaf + ReadLeafBlock is the serving path's split form.
    const auto ref = primary.FindLeaf(q).value();
    const auto block2 = primary.ReadLeafBlock(ref).value();
    ASSERT_EQ(block2.size(), block.size());
    for (size_t i = 0; i < block.size(); ++i) {
      EXPECT_EQ(block2.ids[i], block.ids[i]);
    }
  }
}

std::vector<uncertain::ObjectId> Sorted(std::vector<uncertain::ObjectId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(Step1ParityTest, AllBackendsAgreeWithBruteForce) {
  ParityWorld world;
  Rng rng(53);
  pv::QueryScratch scratch;
  for (int round = 0; round < 40; ++round) {
    const geom::Point q = RandomPoint(&rng, 2, 1000.0);
    const auto oracle = pv::Step1BruteForce(world.db, q);
    EXPECT_EQ(Sorted(world.pv_index->QueryPossibleNN(q, &scratch).value()),
              oracle);
    EXPECT_EQ(world.uv_index->QueryPossibleNN(q, &scratch).value(), oracle);
    EXPECT_EQ(Sorted(rtree::PnnStep1BranchAndPrune(*world.rtree, q)), oracle);
  }
}

// ---------------------------------------------------------------------------
// Step-2 scratch path vs. allocating path
// ---------------------------------------------------------------------------

TEST(QueryScratchTest, Step2BitIdenticalAcrossScratchReuse) {
  ParityWorld world;
  pv::PnnStep2Evaluator step2(&world.db);
  pv::QueryScratch scratch;  // one arena for the whole query stream
  Rng rng(59);
  for (int round = 0; round < 30; ++round) {
    const geom::Point q = RandomPoint(&rng, 2, 1000.0);
    const auto candidates = world.pv_index->QueryPossibleNN(q).value();
    const auto allocating = step2.Evaluate(q, candidates);
    const auto pooled = step2.Evaluate(q, candidates, &scratch);
    ASSERT_EQ(pooled.size(), allocating.size());
    for (size_t i = 0; i < pooled.size(); ++i) {
      EXPECT_EQ(pooled[i].id, allocating[i].id);
      EXPECT_EQ(pooled[i].probability, allocating[i].probability);
    }
  }
}

TEST(QueryScratchTest, Step2ChargesPreRegisteredCounter) {
  ParityWorld world;
  pv::PnnStep2Evaluator step2(&world.db);
  pv::QueryScratch scratch;
  MetricRegistry registry;
  MetricRegistry::Counter* pages =
      registry.Register(pv::PnnCounters::kPdfPagesRead);
  const geom::Point q{500, 500};
  const auto candidates = world.pv_index->QueryPossibleNN(q).value();
  ASSERT_FALSE(candidates.empty());

  MetricRegistry legacy;
  step2.Evaluate(q, candidates, &legacy);  // string-keyed charge
  step2.Evaluate(q, candidates, &scratch, pages);
  EXPECT_GT(pages->value(), 0);
  EXPECT_EQ(pages->value(), legacy.Get(pv::PnnCounters::kPdfPagesRead));
  EXPECT_EQ(registry.Get(pv::PnnCounters::kPdfPagesRead), pages->value());
}

// ---------------------------------------------------------------------------
// MetricRegistry counter handles
// ---------------------------------------------------------------------------

TEST(MetricRegistryTest, HandleAndNameAddressTheSameCounter) {
  MetricRegistry registry;
  MetricRegistry::Counter* c = registry.Register("x");
  EXPECT_EQ(registry.Register("x"), c) << "same name, same handle";
  c->Increment(5);
  registry.Increment("x", 2);
  EXPECT_EQ(registry.Get("x"), 7);
  EXPECT_EQ(c->value(), 7);
  const auto snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.at("x"), 7);
  registry.Reset();
  EXPECT_EQ(c->value(), 0);
  EXPECT_EQ(registry.Get("x"), 0);
}

TEST(MetricRegistryTest, ConcurrentHandleIncrementsDoNotSerializeOrDrop) {
  MetricRegistry registry;
  MetricRegistry::Counter* c = registry.Register("hot");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < kPerThread; ++i) c->Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->value(), int64_t{kThreads} * kPerThread);
  EXPECT_EQ(registry.Get("hot"), int64_t{kThreads} * kPerThread);
}

}  // namespace
}  // namespace pvdb
