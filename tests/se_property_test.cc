// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Additional SE / chooseCSet property suites beyond se_test.cc: clustered
// data, boundary-hugging objects, budget accounting, and determinism —
// the adversarial inputs a production index meets.

#include <gtest/gtest.h>

#include <memory>

#include "src/common/random.h"
#include "src/geom/domination.h"
#include "src/pv/cset.h"
#include "src/pv/se.h"
#include "src/uncertain/dataset.h"

namespace pvdb::pv {
namespace {

struct ClusteredFixture {
  ClusteredFixture(int dim, int clusters, int per_cluster, uint64_t seed)
      : db(std::make_unique<uncertain::Dataset>(
            geom::Rect::Cube(dim, 0, 1000))) {
    Rng rng(seed);
    uncertain::ObjectId next = 0;
    for (int c = 0; c < clusters; ++c) {
      geom::Point center(dim);
      for (int i = 0; i < dim; ++i) center[i] = rng.NextUniform(100, 900);
      for (int k = 0; k < per_cluster; ++k) {
        geom::Point p(dim);
        for (int i = 0; i < dim; ++i) {
          p[i] = std::clamp(center[i] + rng.NextGaussian(0, 25.0), 5.0,
                            995.0);
        }
        geom::Point half(dim);
        for (int i = 0; i < dim; ++i) half[i] = rng.NextUniform(0.5, 4.0);
        geom::Rect region = geom::Rect::FromCenterHalfWidths(p, half);
        region = geom::Rect::Intersection(region,
                                          geom::Rect::Cube(dim, 0, 1000));
        PVDB_CHECK(db->Add(uncertain::UncertainObject::UniformSampled(
                               next++, region, 3, &rng))
                       .ok());
      }
    }
    mean_tree = std::make_unique<rtree::RStarTree>(dim);
    for (const auto& o : db->objects()) {
      mean_tree->Insert(geom::Rect::FromPoint(o.MeanPosition()), o.id());
    }
  }

  std::vector<geom::Rect> OthersOf(uncertain::ObjectId self) const {
    std::vector<geom::Rect> out;
    for (const auto& o : db->objects()) {
      if (o.id() != self) out.push_back(o.region());
    }
    return out;
  }

  std::unique_ptr<uncertain::Dataset> db;
  std::unique_ptr<rtree::RStarTree> mean_tree;
};

TEST(SePropertyTest, ClusteredDataUbrsStaySound) {
  // Clusters are the adversarial case for FS/IS: far-away cluster members
  // can belong to the minimum V-set (the o5 example of Figure 5).
  ClusteredFixture fx(2, 5, 20, /*seed=*/1);
  SeOptions options;
  options.delta = 2.0;
  options.max_partitions = 10;
  SeAlgorithm se(fx.db->domain(), options);
  CSetOptions cset_options;  // IS defaults
  Rng rng(2);
  for (size_t pick = 0; pick < 10; ++pick) {
    const auto& o = fx.db->objects()[pick * 9];
    const auto cset = ChooseCSet(o, *fx.db, *fx.mean_tree, cset_options);
    const geom::Rect ubr = se.ComputeUbr(o, cset.regions);
    const auto others = fx.OthersOf(o.id());
    for (int s = 0; s < 2500; ++s) {
      geom::Point p{rng.NextUniform(0, 1000), rng.NextUniform(0, 1000)};
      if (geom::PointPossiblyNearest(o.region(), others, p)) {
        EXPECT_TRUE(ubr.Contains(p));
      }
    }
  }
}

TEST(SePropertyTest, DomainCornerObjectKeepsCornerInUbr) {
  // An object hugging the domain corner owns that corner of space.
  uncertain::Dataset db(geom::Rect::Cube(2, 0, 1000));
  Rng rng(3);
  ASSERT_TRUE(db.Add(uncertain::UncertainObject::UniformSampled(
                        0, geom::Rect(geom::Point{0, 0}, geom::Point{5, 5}),
                        3, &rng))
                  .ok());
  ASSERT_TRUE(db.Add(uncertain::UncertainObject::UniformSampled(
                        1, geom::Rect(geom::Point{500, 500},
                                      geom::Point{505, 505}),
                        3, &rng))
                  .ok());
  SeAlgorithm se(db.domain(), SeOptions{});
  const std::vector<geom::Rect> cset{db.objects()[1].region()};
  const geom::Rect ubr = se.ComputeUbr(db.objects()[0], cset);
  EXPECT_TRUE(ubr.Contains(geom::Point{0, 0}));
  // And the far corner (clearly owned by object 1) is excluded.
  EXPECT_FALSE(ubr.Contains(geom::Point{1000, 1000}));
}

TEST(SePropertyTest, CellBudgetAccountingConsistent) {
  ClusteredFixture fx(3, 4, 25, /*seed=*/4);
  SeOptions options;
  options.delta = 1.0;
  options.max_partitions = 10;
  SeAlgorithm se(fx.db->domain(), options);
  CSetOptions cset_options;
  for (size_t pick = 0; pick < 8; ++pick) {
    const auto& o = fx.db->objects()[pick * 11];
    const auto cset = ChooseCSet(o, *fx.db, *fx.mean_tree, cset_options);
    SeStats stats;
    se.ComputeUbr(o, cset.regions, &stats);
    EXPECT_EQ(stats.slab_tests, stats.shrinks + stats.expands);
    // Every slab test examines at least one and at most m_max cells.
    EXPECT_GE(stats.cells_examined, stats.slab_tests);
    EXPECT_LE(stats.cells_examined,
              stats.slab_tests * options.max_partitions);
  }
}

TEST(SePropertyTest, DeterministicAcrossRuns) {
  ClusteredFixture fx(2, 3, 15, /*seed=*/5);
  SeAlgorithm se(fx.db->domain(), SeOptions{});
  CSetOptions cset_options;
  for (const auto& o : fx.db->objects()) {
    const auto cset1 = ChooseCSet(o, *fx.db, *fx.mean_tree, cset_options);
    const auto cset2 = ChooseCSet(o, *fx.db, *fx.mean_tree, cset_options);
    ASSERT_EQ(cset1.ids, cset2.ids);
    EXPECT_EQ(se.ComputeUbr(o, cset1.regions),
              se.ComputeUbr(o, cset2.regions));
  }
}

TEST(SePropertyTest, HigherDimQuadrantCountersCovered) {
  // d = 4 → 16 quadrants; IS must still terminate and produce a sound
  // C-set even when some quadrants can never be satisfied.
  ClusteredFixture fx(4, 3, 30, /*seed=*/6);
  CSetOptions options;
  options.k_partition = 3;
  options.k_global = 60;
  for (size_t pick = 0; pick < 5; ++pick) {
    const auto& o = fx.db->objects()[pick * 7];
    const auto cset = ChooseCSet(o, *fx.db, *fx.mean_tree, options);
    EXPECT_LE(cset.examined, 60);
    EXPECT_FALSE(cset.ids.empty());
  }
}

TEST(SePropertyTest, AllObjectsOverlappingGivesDomainUbrs) {
  // Everything overlaps everything: no object constrains any other
  // (Lemma 2), so every UBR must be the whole domain.
  uncertain::Dataset db(geom::Rect::Cube(2, 0, 100));
  Rng rng(7);
  for (uncertain::ObjectId i = 0; i < 8; ++i) {
    ASSERT_TRUE(db.Add(uncertain::UncertainObject::UniformSampled(
                          i,
                          geom::Rect(geom::Point{40.0 + i, 40.0 + i},
                                     geom::Point{60.0 + i, 60.0 + i}),
                          3, &rng))
                    .ok());
  }
  SeAlgorithm se(db.domain(), SeOptions{});
  for (const auto& o : db.objects()) {
    std::vector<geom::Rect> others;
    for (const auto& other : db.objects()) {
      if (other.id() != o.id()) others.push_back(other.region());
    }
    EXPECT_EQ(se.ComputeUbr(o, others), db.domain());
  }
}

}  // namespace
}  // namespace pvdb::pv
