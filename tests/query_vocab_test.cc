// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// The typed query vocabulary's acceptance properties:
//   * ValidateQueryRequest rejects every malformed shape with a descriptive
//     InvalidArgument, and the engine turns such requests into per-answer
//     statuses without aborting their batch.
//   * SampleTrajectory follows the shared arc-length rule deterministically.
//   * EvaluateTopK is bit-identical to sorting the full evaluation by
//     (probability desc, id asc) and truncating — the early-exit bound never
//     changes an answer.
//   * Top-k and threshold answers agree with the Monte-Carlo possible-world
//     oracle; threshold answers are exactly the filtered PNN answers.
//   * Trajectory incremental evaluation (leaf-descent reuse between
//     consecutive samples) is bit-identical to evaluating every sample from
//     scratch, on randomized polylines — and the reuse actually happens.
//   * Range-probability answers equal a brute-force linear scan of the
//     dataset's pdfs, bit for bit.
//   * The legacy point-PNN surface (ExecuteBatch over points, Submit over a
//     point) answers bit-identically to its typed kPnn form.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/pv/pnnq.h"
#include "src/pv/pv_index_builder.h"
#include "src/service/query_engine.h"
#include "src/service/query_request.h"
#include "src/uncertain/datagen.h"

namespace pvdb::service {
namespace {

uncertain::Dataset MakeDb(int dim, size_t count, double extent,
                          uint64_t seed) {
  uncertain::SyntheticOptions options;
  options.dim = dim;
  options.count = count;
  options.max_region_extent = extent;
  options.samples_per_object = 24;
  options.seed = seed;
  return uncertain::GenerateSynthetic(options);
}

std::unique_ptr<QueryEngine> MakeEngine(const uncertain::Dataset& db,
                                        QueryEngineOptions options = {}) {
  auto builder = pv::PvIndexBuilder::Build(db);
  EXPECT_TRUE(builder.ok()) << builder.status().ToString();
  auto snapshot = builder.value()->Seal();
  EXPECT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  auto engine = QueryEngine::CreateFromSnapshot(snapshot.value(), options);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return std::move(engine).value();
}

geom::Point RandomPoint(const geom::Rect& domain, Rng* rng) {
  geom::Point q(domain.dim());
  for (int d = 0; d < domain.dim(); ++d) {
    q[d] = rng->NextUniform(domain.lo(d), domain.hi(d));
  }
  return q;
}

void ExpectResultsBitIdentical(const std::vector<pv::PnnResult>& got,
                               const std::vector<pv::PnnResult>& want,
                               const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t j = 0; j < got.size(); ++j) {
    EXPECT_EQ(got[j].id, want[j].id) << label << " result " << j;
    EXPECT_EQ(std::memcmp(&got[j].probability, &want[j].probability,
                          sizeof(double)),
              0)
        << label << " result " << j << ": " << got[j].probability << " vs "
        << want[j].probability;
  }
}

// ---------------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------------

TEST(ValidateQueryRequestTest, AcceptsEveryWellFormedKind) {
  geom::Point p(3);
  geom::Rect rect(3);
  for (int d = 0; d < 3; ++d) rect.set_hi(d, 1.0);
  EXPECT_TRUE(ValidateQueryRequest(QueryRequest::Pnn(p), 3).ok());
  EXPECT_TRUE(ValidateQueryRequest(QueryRequest::TopKByProb(p, 1), 3).ok());
  EXPECT_TRUE(ValidateQueryRequest(QueryRequest::ThresholdNN(p, 0.0), 3).ok());
  EXPECT_TRUE(ValidateQueryRequest(QueryRequest::ThresholdNN(p, 1.0), 3).ok());
  EXPECT_TRUE(ValidateQueryRequest(QueryRequest::RangeProb(rect, 0.5), 3).ok());
  EXPECT_TRUE(
      ValidateQueryRequest(QueryRequest::TrajectoryPnn({p}, 2.0), 3).ok());
}

TEST(ValidateQueryRequestTest, RejectsEveryMalformedShape) {
  geom::Point p2(2);
  geom::Point p3(3);
  geom::Rect rect2(2);
  rect2.set_hi(0, 1.0);
  rect2.set_hi(1, 1.0);

  struct Case {
    const char* label;
    QueryRequest req;
    const char* needle;  // must appear in the message
  };
  std::vector<Case> cases;
  cases.push_back({"dim mismatch", QueryRequest::Pnn(p3), "dimensionality"});
  {
    geom::Point nan_p(2);
    nan_p[0] = std::nan("");
    cases.push_back({"nan point", QueryRequest::Pnn(nan_p), "finite"});
  }
  cases.push_back({"k zero", QueryRequest::TopKByProb(p2, 0), "k must be"});
  cases.push_back(
      {"p negative", QueryRequest::ThresholdNN(p2, -0.1), "[0, 1]"});
  cases.push_back({"p above one", QueryRequest::ThresholdNN(p2, 1.5),
                   "[0, 1]"});
  cases.push_back(
      {"p nan", QueryRequest::ThresholdNN(p2, std::nan("")), "[0, 1]"});
  {
    geom::Rect bad(2);
    bad.set_lo(0, 2.0);
    bad.set_hi(0, -2.0);
    cases.push_back(
        {"rect lo above hi", QueryRequest::RangeProb(bad, 0.5), "lo <= hi"});
  }
  {
    geom::Rect rect3(3);
    cases.push_back({"rect dim mismatch", QueryRequest::RangeProb(rect3, 0.5),
                     "dimensionality"});
  }
  cases.push_back({"empty polyline", QueryRequest::TrajectoryPnn({}, 1.0),
                   "at least one point"});
  cases.push_back({"zero step", QueryRequest::TrajectoryPnn({p2}, 0.0),
                   "step must be"});
  cases.push_back({"negative step", QueryRequest::TrajectoryPnn({p2}, -3.0),
                   "step must be"});
  {
    geom::Point far(2);
    far[0] = 1e9;
    cases.push_back({"too many samples",
                     QueryRequest::TrajectoryPnn({p2, far}, 1e-3), "samples"});
  }
  {
    QueryRequest unknown;
    unknown.kind = static_cast<QueryKind>(99);
    cases.push_back({"unknown kind", unknown, "unknown kind"});
  }

  for (const Case& c : cases) {
    const Status s = ValidateQueryRequest(c.req, 2);
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << c.label;
    EXPECT_NE(s.ToString().find(c.needle), std::string::npos)
        << c.label << ": " << s.ToString();
  }
}

TEST(ValidateQueryRequestTest, EngineAnswersMalformedRequestsPerAnswer) {
  const uncertain::Dataset db = MakeDb(2, 60, 200.0, 41);
  auto engine = MakeEngine(db);
  Rng rng(42);
  const geom::Point good = RandomPoint(db.domain(), &rng);
  std::vector<QueryRequest> batch;
  batch.push_back(QueryRequest::TopKByProb(good, 0));    // malformed
  batch.push_back(QueryRequest::Pnn(good));              // fine
  batch.push_back(QueryRequest::ThresholdNN(good, 2.0)); // malformed
  ServiceStats stats;
  const std::vector<QueryAnswer> answers = engine->ExecuteBatch(batch, &stats);
  ASSERT_EQ(answers.size(), 3u);
  EXPECT_EQ(answers[0].status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(answers[1].status.ok()) << answers[1].status.ToString();
  EXPECT_EQ(answers[2].status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(answers[0].results.empty());
  EXPECT_TRUE(answers[2].results.empty());
  EXPECT_EQ(stats.queries, 3);
}

// ---------------------------------------------------------------------------
// SampleTrajectory
// ---------------------------------------------------------------------------

TEST(SampleTrajectoryTest, FollowsTheArcLengthRule) {
  geom::Point a(2);
  geom::Point b(2);
  b[0] = 10.0;
  geom::Point c(2);
  c[0] = 10.0;
  c[1] = 4.0;
  // Path length 14, step 4: samples at arc lengths 0, 4, 8, 12, then the
  // destination.
  const std::vector<geom::Point> path{a, b, c};
  const std::vector<geom::Point> samples = SampleTrajectory(path, 4.0);
  ASSERT_EQ(samples.size(), 5u);
  EXPECT_EQ(samples[0][0], 0.0);
  EXPECT_EQ(samples[1][0], 4.0);
  EXPECT_EQ(samples[2][0], 8.0);
  // Arc length 12 is 2 into the second segment (which runs along dim 1).
  EXPECT_EQ(samples[3][0], 10.0);
  EXPECT_EQ(samples[3][1], 2.0);
  EXPECT_EQ(samples[4][0], 10.0);
  EXPECT_EQ(samples[4][1], 4.0);

  // A single waypoint evaluates exactly once.
  const std::vector<geom::Point> lone{a};
  EXPECT_EQ(SampleTrajectory(lone, 1.0).size(), 1u);

  // A step longer than the whole path still evaluates both endpoints.
  const std::vector<geom::Point> pair{a, b};
  EXPECT_EQ(SampleTrajectory(pair, 100.0).size(), 2u);
}

TEST(SampleTrajectoryTest, IsDeterministic) {
  Rng rng(7);
  std::vector<geom::Point> polyline;
  for (int i = 0; i < 5; ++i) {
    geom::Point p(3);
    for (int d = 0; d < 3; ++d) p[d] = rng.NextUniform(-100.0, 100.0);
    polyline.push_back(p);
  }
  const auto first = SampleTrajectory(polyline, 7.3);
  const auto second = SampleTrajectory(polyline, 7.3);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    for (int d = 0; d < 3; ++d) {
      const double x = first[i][d];
      const double y = second[i][d];
      EXPECT_EQ(std::memcmp(&x, &y, sizeof(double)), 0);
    }
  }
}

// ---------------------------------------------------------------------------
// EvaluateTopK == sort-and-truncate of the full evaluation
// ---------------------------------------------------------------------------

TEST(TopKTest, BitIdenticalToFullEvaluationSortedAndTruncated) {
  const uncertain::Dataset db = MakeDb(2, 120, 600.0, 51);
  pv::PnnStep2Evaluator step2(&db);
  pv::QueryScratch scratch;
  Rng rng(52);
  for (int trial = 0; trial < 24; ++trial) {
    const geom::Point q = RandomPoint(db.domain(), &rng);
    std::vector<uncertain::ObjectId> candidates = pv::Step1BruteForce(db, q);
    std::sort(candidates.begin(), candidates.end());  // canonical order
    const std::vector<pv::PnnResult> full = step2.Evaluate(q, candidates);
    for (uint32_t k : {1u, 2u, 3u, 8u, 1000u}) {
      const std::vector<pv::PnnResult> want =
          SelectResults(QueryRequest::TopKByProb(q, k), full);
      const std::vector<pv::PnnResult> got =
          step2.EvaluateTopK(q, candidates, k, &scratch);
      ExpectResultsBitIdentical(
          got, want, "trial " + std::to_string(trial) + " k=" +
                         std::to_string(k));
    }
  }
}

// ---------------------------------------------------------------------------
// Monte-Carlo agreement (top-k and threshold vs possible-world sampling)
// ---------------------------------------------------------------------------

TEST(MonteCarloTest, TopKAndThresholdAgreeWithPossibleWorldSampling) {
  // Few objects with wide, overlapping regions: qualification probabilities
  // spread across several objects instead of collapsing to one.
  const uncertain::Dataset db = MakeDb(2, 12, 4000.0, 61);
  pv::PnnStep2Evaluator step2(&db);
  QueryEngineOptions options;
  options.canonical_candidates = true;
  auto engine = MakeEngine(db, options);
  Rng rng(62);
  for (int trial = 0; trial < 6; ++trial) {
    const geom::Point q = RandomPoint(db.domain(), &rng);
    std::vector<uncertain::ObjectId> candidates = pv::Step1BruteForce(db, q);
    std::sort(candidates.begin(), candidates.end());
    const std::vector<pv::PnnResult> mc =
        step2.EstimateByMonteCarlo(q, candidates, /*trials=*/20000,
                                   /*seed=*/100 + trial);
    auto mc_prob = [&mc](uncertain::ObjectId id) {
      for (const pv::PnnResult& m : mc) {
        if (m.id == id) return m.probability;
      }
      return 0.0;
    };

    std::vector<QueryRequest> batch;
    batch.push_back(QueryRequest::TopKByProb(q, 3));
    batch.push_back(QueryRequest::ThresholdNN(q, 0.2));
    const std::vector<QueryAnswer> answers = engine->ExecuteBatch(batch);
    ASSERT_TRUE(answers[0].status.ok()) << answers[0].status.ToString();
    ASSERT_TRUE(answers[1].status.ok()) << answers[1].status.ToString();

    // Every returned probability sits within sampling error of the oracle.
    for (const QueryAnswer& ans : answers) {
      for (const pv::PnnResult& r : ans.results) {
        EXPECT_NEAR(r.probability, mc_prob(r.id), 0.02)
            << "trial " << trial << " object " << r.id;
      }
    }
    // Threshold semantics against the oracle, with a sampling-error margin:
    // clearly-above objects are present, clearly-below objects are absent.
    const std::vector<pv::PnnResult>& kept = answers[1].results;
    auto in_answer = [&kept](uncertain::ObjectId id) {
      for (const pv::PnnResult& r : kept) {
        if (r.id == id) return true;
      }
      return false;
    };
    for (const pv::PnnResult& m : mc) {
      if (m.probability > 0.25) {
        EXPECT_TRUE(in_answer(m.id))
            << "trial " << trial << ": object " << m.id << " (mc "
            << m.probability << ") missing from threshold answer";
      }
      if (m.probability < 0.15 && in_answer(m.id)) {
        ADD_FAILURE() << "trial " << trial << ": object " << m.id << " (mc "
                      << m.probability << ") should be below threshold";
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Threshold == filtered PNN (engine level)
// ---------------------------------------------------------------------------

TEST(ThresholdTest, EqualsFilteredPnnBitForBit) {
  const uncertain::Dataset db = MakeDb(3, 200, 500.0, 71);
  auto engine = MakeEngine(db);
  Rng rng(72);
  std::vector<QueryRequest> pnn;
  std::vector<QueryRequest> threshold;
  const double p = 0.1;
  for (int i = 0; i < 32; ++i) {
    const geom::Point q = RandomPoint(db.domain(), &rng);
    pnn.push_back(QueryRequest::Pnn(q));
    threshold.push_back(QueryRequest::ThresholdNN(q, p));
  }
  const std::vector<QueryAnswer> full = engine->ExecuteBatch(pnn);
  const std::vector<QueryAnswer> got = engine->ExecuteBatch(threshold);
  for (size_t i = 0; i < pnn.size(); ++i) {
    ASSERT_TRUE(full[i].status.ok());
    ASSERT_TRUE(got[i].status.ok());
    std::vector<pv::PnnResult> want;
    for (const pv::PnnResult& r : full[i].results) {
      if (r.probability > p) want.push_back(r);
    }
    ExpectResultsBitIdentical(got[i].results, want,
                              "query " + std::to_string(i));
  }
}

// ---------------------------------------------------------------------------
// Trajectory: incremental == from-scratch, and the reuse actually happens
// ---------------------------------------------------------------------------

TEST(TrajectoryTest, IncrementalMatchesFromScratchOnRandomPolylines) {
  const uncertain::Dataset db = MakeDb(2, 250, 400.0, 81);
  auto engine = MakeEngine(db);
  Rng rng(82);
  size_t reused_total = 0;
  size_t steps_total = 0;
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<geom::Point> polyline;
    const int waypoints = 2 + static_cast<int>(rng.NextUniform(0.0, 3.0));
    for (int i = 0; i < waypoints; ++i) {
      polyline.push_back(RandomPoint(db.domain(), &rng));
    }
    // A fine step keeps consecutive samples close, so most stay inside the
    // previous sample's leaf cell — the reuse path under test.
    const double step =
        (db.domain().hi(0) - db.domain().lo(0)) / 256.0;

    const QueryRequest req = QueryRequest::TrajectoryPnn(polyline, step);
    std::vector<QueryAnswer> incremental = engine->ExecuteBatch(
        std::span<const QueryRequest>(&req, 1));
    ASSERT_EQ(incremental.size(), 1u);
    ASSERT_TRUE(incremental[0].status.ok())
        << incremental[0].status.ToString();

    const std::vector<geom::Point> samples =
        SampleTrajectory(polyline, step);
    ASSERT_EQ(incremental[0].steps.size(), samples.size());
    const std::vector<QueryAnswer> scratch =
        engine->ExecuteBatch(PnnRequests(samples));
    for (size_t s = 0; s < samples.size(); ++s) {
      ASSERT_TRUE(scratch[s].status.ok());
      const TrajectoryStepAnswer& step_ans = incremental[0].steps[s];
      for (int d = 0; d < samples[s].dim(); ++d) {
        EXPECT_EQ(step_ans.point[d], samples[s][d]);
      }
      ExpectResultsBitIdentical(
          step_ans.results, scratch[s].results,
          "trial " + std::to_string(trial) + " step " + std::to_string(s));
      if (step_ans.reused_step1) reused_total++;
    }
    steps_total += samples.size();
    EXPECT_FALSE(incremental[0].steps[0].reused_step1)
        << "the first sample has no predecessor to reuse";
  }
  // The property the incremental path exists for: with samples this dense,
  // a large share of descents must have been skipped.
  EXPECT_GT(reused_total, steps_total / 4)
      << reused_total << " of " << steps_total << " steps reused their leaf";
}

// ---------------------------------------------------------------------------
// Range probability == brute-force pdf scan
// ---------------------------------------------------------------------------

TEST(RangeProbTest, MatchesLinearPdfScanBitForBit) {
  const uncertain::Dataset db = MakeDb(2, 180, 900.0, 91);
  auto engine = MakeEngine(db);
  Rng rng(92);
  for (int trial = 0; trial < 16; ++trial) {
    geom::Rect rect(2);
    for (int d = 0; d < 2; ++d) {
      const double lo = rng.NextUniform(db.domain().lo(d),
                                        db.domain().hi(d) * 0.7);
      rect.set_lo(d, lo);
      rect.set_hi(d, lo + rng.NextUniform(
                            0.0, (db.domain().hi(d) - lo) * 0.5));
    }
    const double threshold = (trial % 2 == 0) ? 0.0 : 0.3;

    // The oracle: every object's containment probability, summed in pdf
    // order (the same order EvaluateRangeProb sums in).
    std::vector<pv::PnnResult> want;
    for (const uncertain::UncertainObject& o : db.objects()) {
      double p = 0.0;
      for (const uncertain::Instance& inst : o.pdf()) {
        if (rect.Contains(inst.position)) p += inst.probability;
      }
      if (p > threshold) want.push_back({o.id(), p});
    }
    std::sort(want.begin(), want.end(),
              [](const pv::PnnResult& a, const pv::PnnResult& b) {
                if (a.probability != b.probability) {
                  return a.probability > b.probability;
                }
                return a.id < b.id;
              });

    const QueryRequest req = QueryRequest::RangeProb(rect, threshold);
    const std::vector<QueryAnswer> got = engine->ExecuteBatch(
        std::span<const QueryRequest>(&req, 1));
    ASSERT_EQ(got.size(), 1u);
    ASSERT_TRUE(got[0].status.ok()) << got[0].status.ToString();
    EXPECT_EQ(got[0].kind, QueryKind::kRangeProb);
    ExpectResultsBitIdentical(got[0].results, want,
                              "trial " + std::to_string(trial));
  }
}

// ---------------------------------------------------------------------------
// Legacy shim bit-identity
// ---------------------------------------------------------------------------

TEST(LegacyShimTest, PointBatchMatchesTypedPnnBitForBit) {
  const uncertain::Dataset db = MakeDb(3, 150, 300.0, 95);
  auto engine = MakeEngine(db);
  Rng rng(96);
  std::vector<geom::Point> points;
  for (int i = 0; i < 24; ++i) points.push_back(RandomPoint(db.domain(), &rng));

  const std::vector<PnnAnswer> legacy = engine->ExecuteBatch(points);
  const std::vector<QueryAnswer> typed =
      engine->ExecuteBatch(PnnRequests(points));
  ASSERT_EQ(legacy.size(), typed.size());
  for (size_t i = 0; i < legacy.size(); ++i) {
    ASSERT_TRUE(legacy[i].status.ok());
    ASSERT_TRUE(typed[i].status.ok());
    EXPECT_EQ(typed[i].kind, QueryKind::kPnn);
    ExpectResultsBitIdentical(legacy[i].results, typed[i].results,
                              "query " + std::to_string(i));
  }

  // The async single-point shim answers identically too.
  PnnAnswer one = engine->Submit(points[0]).get();
  ASSERT_TRUE(one.status.ok());
  ExpectResultsBitIdentical(one.results, typed[0].results, "submit");

  QueryAnswer typed_one = engine->Submit(QueryRequest::Pnn(points[0])).get();
  ASSERT_TRUE(typed_one.status.ok());
  ExpectResultsBitIdentical(typed_one.results, typed[0].results,
                            "typed submit");
}

}  // namespace
}  // namespace pvdb::service
