// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Networking layer tests: frame encode/decode hardening (torn, truncated,
// bad-magic, bad-CRC, future-version and oversized frames — descriptive
// Status, never a crash), wire codec round trips and corruption bounds,
// the poll-based TCP server + deadline client end to end (binary frames
// and HTTP /metrics on one port), ShardServer over RemoteShardConnection,
// dead-peer timeouts (kUnavailable, never a hang), and the open-loop load
// generator against a live shard server.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/net/client.h"
#include "src/net/frame.h"
#include "src/net/loadgen.h"
#include "src/net/server.h"
#include "src/net/wire.h"
#include "src/pv/pv_index_builder.h"
#include "src/shard/shard_service.h"
#include "src/uncertain/datagen.h"

namespace pvdb::net {
namespace {

std::vector<uint8_t> Payload(std::initializer_list<uint8_t> b) { return b; }

// Blocking loopback socket for tests that must speak raw (corrupt) bytes
// the deadline client would refuse to produce.
int RawConnect(int port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return -1;
  }
  return fd;
}

/// Writes `bytes` raw, reads back one frame, expects kError and returns
/// the carried Status (transport problems come back as kIOError, which no
/// server-side verdict uses).
Status SendRawFrame(int port, const std::vector<uint8_t>& bytes) {
  const int fd = RawConnect(port);
  if (fd < 0) return Status::IOError("raw connect failed");
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = write(fd, bytes.data() + off, bytes.size() - off);
    if (n <= 0) {
      close(fd);
      return Status::IOError("raw write failed");
    }
    off += static_cast<size_t>(n);
  }
  std::vector<uint8_t> response;
  uint8_t chunk[4096];
  // The server answers then closes on a transport fault, so read-to-EOF
  // terminates.
  for (;;) {
    const ssize_t n = read(fd, chunk, sizeof(chunk));
    if (n <= 0) break;
    response.insert(response.end(), chunk, chunk + n);
  }
  close(fd);
  if (response.size() < kFrameHeaderBytes) {
    return Status::IOError("no frame came back");
  }
  auto header = DecodeFrameHeader(
      std::span<const uint8_t>(response.data(), kFrameHeaderBytes));
  if (!header.ok()) return header.status();
  if (header.value().type != MessageType::kError) {
    return Status::IOError("expected a kError response");
  }
  return DecodeErrorResponse(std::span<const uint8_t>(
      response.data() + kFrameHeaderBytes, header.value().payload_len));
}

/// One blocking HTTP exchange; returns the raw response text.
Result<std::string> HttpGet(int port, const std::string& request) {
  const int fd = RawConnect(port);
  if (fd < 0) return Status::IOError("raw connect failed");
  size_t off = 0;
  while (off < request.size()) {
    const ssize_t n = write(fd, request.data() + off, request.size() - off);
    if (n <= 0) {
      close(fd);
      return Status::IOError("raw write failed");
    }
    off += static_cast<size_t>(n);
  }
  std::string response;
  char chunk[4096];
  for (;;) {
    const ssize_t n = read(fd, chunk, sizeof(chunk));
    if (n <= 0) break;
    response.append(chunk, static_cast<size_t>(n));
  }
  close(fd);
  return response;
}

// ---------------------------------------------------------------------------
// Frame header + CRC hardening
// ---------------------------------------------------------------------------

TEST(FrameTest, RoundTrip) {
  const std::vector<uint8_t> payload = Payload({1, 2, 3, 4, 5});
  const std::vector<uint8_t> frame =
      EncodeFrame(MessageType::kQueryBatch, payload);
  ASSERT_EQ(frame.size(), kFrameHeaderBytes + payload.size());
  auto header = DecodeFrameHeader(
      std::span<const uint8_t>(frame.data(), kFrameHeaderBytes));
  ASSERT_TRUE(header.ok()) << header.status().ToString();
  EXPECT_EQ(header.value().type, MessageType::kQueryBatch);
  EXPECT_EQ(header.value().payload_len, payload.size());
  EXPECT_TRUE(VerifyFramePayload(header.value(),
                                 std::span<const uint8_t>(
                                     frame.data() + kFrameHeaderBytes,
                                     payload.size()))
                  .ok());
}

TEST(FrameTest, EmptyPayloadRoundTrips) {
  const std::vector<uint8_t> frame = EncodeFrame(MessageType::kInfo, {});
  ASSERT_EQ(frame.size(), kFrameHeaderBytes);
  auto header = DecodeFrameHeader(frame);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header.value().payload_len, 0u);
  EXPECT_TRUE(VerifyFramePayload(header.value(), {}).ok());
}

TEST(FrameTest, TornHeaderIsCorruption) {
  const std::vector<uint8_t> frame =
      EncodeFrame(MessageType::kInfo, Payload({9}));
  for (size_t len = 0; len < kFrameHeaderBytes; ++len) {
    auto header =
        DecodeFrameHeader(std::span<const uint8_t>(frame.data(), len));
    ASSERT_FALSE(header.ok()) << "torn header of " << len << " parsed";
    EXPECT_EQ(header.status().code(), StatusCode::kCorruption);
    EXPECT_FALSE(header.status().ToString().empty());
  }
}

TEST(FrameTest, BadMagicIsCorruption) {
  std::vector<uint8_t> frame = EncodeFrame(MessageType::kInfo, {});
  frame[0] = 'X';
  auto header = DecodeFrameHeader(frame);
  ASSERT_FALSE(header.ok());
  EXPECT_EQ(header.status().code(), StatusCode::kCorruption);
  EXPECT_NE(header.status().ToString().find("magic"), std::string::npos)
      << header.status().ToString();
}

TEST(FrameTest, FutureVersionIsNotSupported) {
  std::vector<uint8_t> frame = EncodeFrame(MessageType::kInfo, {});
  frame[4] = kFrameVersion + 1;
  auto header = DecodeFrameHeader(frame);
  ASSERT_FALSE(header.ok());
  EXPECT_EQ(header.status().code(), StatusCode::kNotSupported);
}

TEST(FrameTest, NonzeroFlagsAreCorruption) {
  std::vector<uint8_t> frame = EncodeFrame(MessageType::kInfo, {});
  frame[6] = 0x01;
  EXPECT_EQ(DecodeFrameHeader(frame).status().code(),
            StatusCode::kCorruption);
}

TEST(FrameTest, OversizedLengthIsCorruption) {
  std::vector<uint8_t> frame = EncodeFrame(MessageType::kInfo, {});
  const uint32_t huge = kMaxFramePayload + 1;
  std::memcpy(frame.data() + 8, &huge, sizeof(huge));
  auto header = DecodeFrameHeader(frame);
  ASSERT_FALSE(header.ok());
  EXPECT_EQ(header.status().code(), StatusCode::kCorruption);
}

TEST(FrameTest, FlippedPayloadBitFailsCrc) {
  std::vector<uint8_t> payload = Payload({10, 20, 30, 40});
  const std::vector<uint8_t> frame =
      EncodeFrame(MessageType::kQueryBatch, payload);
  auto header = DecodeFrameHeader(
      std::span<const uint8_t>(frame.data(), kFrameHeaderBytes));
  ASSERT_TRUE(header.ok());
  payload[2] ^= 0x04;
  const Status bad = VerifyFramePayload(header.value(), payload);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), StatusCode::kCorruption);
  EXPECT_NE(bad.ToString().find("CRC"), std::string::npos) << bad.ToString();
}

TEST(FrameTest, TruncatedPayloadFailsVerification) {
  const std::vector<uint8_t> payload = Payload({1, 2, 3, 4, 5, 6});
  const std::vector<uint8_t> frame =
      EncodeFrame(MessageType::kQueryBatch, payload);
  auto header = DecodeFrameHeader(
      std::span<const uint8_t>(frame.data(), kFrameHeaderBytes));
  ASSERT_TRUE(header.ok());
  const Status bad = VerifyFramePayload(
      header.value(), std::span<const uint8_t>(payload.data(), 3));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), StatusCode::kCorruption);
}

TEST(FrameTest, LegacyTypesStillEncodeAsVersionOne) {
  // A v2 build keeps stamping the original message types as v1 frames, so
  // a v1 peer can keep decoding them.
  for (MessageType type :
       {MessageType::kInfo, MessageType::kQueryBatch, MessageType::kStep1Batch,
        MessageType::kFetchRecords, MessageType::kError}) {
    const std::vector<uint8_t> frame = EncodeFrame(type, {});
    EXPECT_EQ(frame[4], 1) << "type " << static_cast<int>(type);
    EXPECT_TRUE(DecodeFrameHeader(frame).ok());
  }
  for (MessageType type :
       {MessageType::kQueryRequestBatch, MessageType::kQueryAnswerBatch,
        MessageType::kRangeStep1Batch}) {
    const std::vector<uint8_t> frame = EncodeFrame(type, {});
    EXPECT_EQ(frame[4], 2) << "type " << static_cast<int>(type);
    EXPECT_TRUE(DecodeFrameHeader(frame).ok());
  }
}

TEST(FrameTest, GoldenVersionOneFrameStillDecodes) {
  // Byte-for-byte v1 frame captured before the v2 protocol bump: one
  // kQueryBatch request of a single 2-d point (1.5, -2.5). This build must
  // keep decoding it unchanged — header, CRC and payload.
  const std::vector<uint8_t> golden = {
      // header: magic "PVDF", version 1, type 2, flags 0, len 24, CRC-32C
      0x50, 0x56, 0x44, 0x46, 0x01, 0x02, 0x00, 0x00,
      0x18, 0x00, 0x00, 0x00, 0x27, 0x1e, 0x3b, 0x3d,
      // payload: dim=2, count=1, f64 1.5, f64 -2.5
      0x02, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xf8, 0x3f,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x04, 0xc0};
  auto header = DecodeFrameHeader(
      std::span<const uint8_t>(golden.data(), kFrameHeaderBytes));
  ASSERT_TRUE(header.ok()) << header.status().ToString();
  EXPECT_EQ(header.value().version, 1);
  EXPECT_EQ(header.value().type, MessageType::kQueryBatch);
  const std::span<const uint8_t> payload(golden.data() + kFrameHeaderBytes,
                                         header.value().payload_len);
  ASSERT_TRUE(VerifyFramePayload(header.value(), payload).ok());
  auto queries = DecodeQueryBatchRequest(payload);
  ASSERT_TRUE(queries.ok()) << queries.status().ToString();
  ASSERT_EQ(queries.value().size(), 1u);
  EXPECT_EQ(queries.value()[0][0], 1.5);
  EXPECT_EQ(queries.value()[0][1], -2.5);
}

TEST(FrameTest, NewTypeInVersionOneFrameIsRejected) {
  // The typed-vocabulary messages need v2; a frame claiming to carry one
  // at v1 is corrupt (no v1 encoder ever produced it).
  std::vector<uint8_t> frame =
      EncodeFrame(MessageType::kQueryRequestBatch, {});
  frame[4] = 1;
  auto header = DecodeFrameHeader(frame);
  ASSERT_FALSE(header.ok());
  EXPECT_EQ(header.status().code(), StatusCode::kCorruption);
  EXPECT_NE(header.status().ToString().find("requires protocol version"),
            std::string::npos)
      << header.status().ToString();
}

TEST(FrameTest, LegacyTypeInVersionTwoFrameDecodes) {
  // The accept window is [kMinFrameVersion, kFrameVersion]: a peer may
  // stamp an old message at the newer version.
  std::vector<uint8_t> frame = EncodeFrame(MessageType::kInfo, {});
  frame[4] = 2;
  EXPECT_TRUE(DecodeFrameHeader(frame).ok());
}

// ---------------------------------------------------------------------------
// Wire codecs
// ---------------------------------------------------------------------------

TEST(WireTest, QueryBatchRoundTrip) {
  std::vector<geom::Point> queries;
  for (int i = 0; i < 5; ++i) {
    geom::Point q(3);
    q[0] = i * 1.5;
    q[1] = -i;
    q[2] = 1.0 / (i + 1);
    queries.push_back(q);
  }
  auto decoded = DecodeQueryBatchRequest(EncodeQueryBatchRequest(queries));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded.value().size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    for (int d = 0; d < 3; ++d) {
      EXPECT_EQ(decoded.value()[i][d], queries[i][d]);
    }
  }
}

TEST(WireTest, QueryBatchTruncationIsCorruption) {
  std::vector<geom::Point> queries(3, geom::Point(2));
  const std::vector<uint8_t> image = EncodeQueryBatchRequest(queries);
  for (size_t len = 0; len < image.size(); ++len) {
    auto decoded = DecodeQueryBatchRequest(
        std::span<const uint8_t>(image.data(), len));
    ASSERT_FALSE(decoded.ok()) << "truncated to " << len << " parsed";
    EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
  }
}

TEST(WireTest, AbsurdCountFieldIsRejectedBeforeAllocation) {
  // dim=2, count=2^30 with a 12-byte body: the decoder must reject on the
  // size check, not attempt a gigabyte vector.
  std::vector<uint8_t> image(12, 0);
  image[0] = 2;               // dim
  image[4] = 0;
  image[5] = 0;
  image[6] = 0;
  image[7] = 0x40;            // count = 1 << 30
  auto decoded = DecodeQueryBatchRequest(image);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

TEST(WireTest, Step1BatchResponseRoundTripsStatusAndCandidates) {
  std::vector<shard::ShardStep1Answer> answers(2);
  answers[0].candidates = {{7, 1.25, 9.5}, {9, 0.0, 2.0}};
  answers[1].status = Status::Unavailable("shard draining");
  auto decoded =
      DecodeStep1BatchResponse(EncodeStep1BatchResponse(answers));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded.value().size(), 2u);
  EXPECT_EQ(decoded.value()[0].candidates.size(), 2u);
  EXPECT_EQ(decoded.value()[0].candidates[0].id, 7u);
  EXPECT_EQ(decoded.value()[0].candidates[0].min_dist_sq, 1.25);
  EXPECT_EQ(decoded.value()[1].status.code(), StatusCode::kUnavailable);
  EXPECT_NE(decoded.value()[1].status.ToString().find("draining"),
            std::string::npos);
}

TEST(WireTest, FetchRecordsRoundTrip) {
  Rng rng(3);
  geom::Rect region(2);
  region.set_lo(0, 1.0);
  region.set_hi(0, 2.0);
  region.set_lo(1, 5.0);
  region.set_hi(1, 6.0);
  std::vector<uncertain::UncertainObject> records;
  records.push_back(
      uncertain::UncertainObject::UniformSampled(42, region, 8, &rng));
  auto decoded =
      DecodeFetchRecordsResponse(EncodeFetchRecordsResponse(records));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded.value().size(), 1u);
  std::vector<uint8_t> a;
  std::vector<uint8_t> b;
  records[0].AppendTo(&a);
  decoded.value()[0].AppendTo(&b);
  EXPECT_EQ(a, b) << "record bytes changed crossing the wire";
}

TEST(WireTest, ErrorResponseCarriesStatusAndRejectsOk) {
  const Status original = Status::NotFound("object 12 missing");
  const Status decoded = DecodeErrorResponse(EncodeErrorResponse(original));
  EXPECT_EQ(decoded.code(), StatusCode::kNotFound);
  EXPECT_NE(decoded.ToString().find("object 12 missing"), std::string::npos);
  // An OK travelling in an error frame is itself a protocol violation.
  EXPECT_EQ(DecodeErrorResponse(EncodeErrorResponse(Status::OK())).code(),
            StatusCode::kCorruption);
}

// Builds one request of every typed kind over `dim` dimensions.
std::vector<service::QueryRequest> OneRequestPerKind(int dim) {
  geom::Point p(dim);
  for (int d = 0; d < dim; ++d) p[d] = 0.5 + d;
  geom::Rect rect(dim);
  for (int d = 0; d < dim; ++d) {
    rect.set_lo(d, -1.0 - d);
    rect.set_hi(d, 2.0 + d);
  }
  geom::Point a(dim);
  geom::Point b(dim);
  for (int d = 0; d < dim; ++d) {
    a[d] = -3.0 + d;
    b[d] = 4.0 - d;
  }
  std::vector<service::QueryRequest> requests;
  requests.push_back(service::QueryRequest::Pnn(p));
  requests.push_back(service::QueryRequest::TopKByProb(p, 3));
  requests.push_back(service::QueryRequest::ThresholdNN(p, 0.25));
  requests.push_back(service::QueryRequest::RangeProb(rect, 0.5));
  requests.push_back(service::QueryRequest::TrajectoryPnn({a, b}, 1.5));
  return requests;
}

TEST(WireTest, QueryRequestBatchRoundTripsEveryKind) {
  const std::vector<service::QueryRequest> requests = OneRequestPerKind(3);
  auto decoded = DecodeQueryRequestBatch(EncodeQueryRequestBatch(requests));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded.value().size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    const service::QueryRequest& in = requests[i];
    const service::QueryRequest& out = decoded.value()[i];
    EXPECT_EQ(out.kind, in.kind) << "request " << i;
    EXPECT_EQ(out.k, in.k);
    EXPECT_EQ(out.probability, in.probability);
    EXPECT_EQ(out.step, in.step);
    ASSERT_EQ(out.point.dim(), in.point.dim());
    for (int d = 0; d < in.point.dim(); ++d) {
      EXPECT_EQ(out.point[d], in.point[d]);
    }
    ASSERT_EQ(out.rect.dim(), in.rect.dim());
    for (int d = 0; d < in.rect.dim(); ++d) {
      EXPECT_EQ(out.rect.lo(d), in.rect.lo(d));
      EXPECT_EQ(out.rect.hi(d), in.rect.hi(d));
    }
    ASSERT_EQ(out.polyline.size(), in.polyline.size());
    for (size_t v = 0; v < in.polyline.size(); ++v) {
      for (int d = 0; d < in.polyline[v].dim(); ++d) {
        EXPECT_EQ(out.polyline[v][d], in.polyline[v][d]);
      }
    }
  }
}

TEST(WireTest, QueryRequestBatchTruncationIsCorruption) {
  const std::vector<uint8_t> image =
      EncodeQueryRequestBatch(OneRequestPerKind(2));
  for (size_t len = 0; len < image.size(); ++len) {
    auto decoded = DecodeQueryRequestBatch(
        std::span<const uint8_t>(image.data(), len));
    ASSERT_FALSE(decoded.ok()) << "truncated to " << len << " parsed";
    EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
  }
}

TEST(WireTest, QueryRequestBatchUnknownKindIsCorruption) {
  const std::vector<service::QueryRequest> one{
      service::QueryRequest::Pnn(geom::Point(2))};
  std::vector<uint8_t> image = EncodeQueryRequestBatch(one);
  // The kind byte sits right after dim u32 + count u32.
  image[8] = 0xee;
  auto decoded = DecodeQueryRequestBatch(image);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
  EXPECT_NE(decoded.status().ToString().find("kind"), std::string::npos);
}

TEST(WireTest, QueryRequestBatchMalformedRectDecodesStructurally) {
  // lo > hi is a semantic error: it must cross the wire intact so the
  // server can answer per-request InvalidArgument, not drop the frame.
  geom::Rect bad(2);
  bad.set_lo(0, 5.0);
  bad.set_hi(0, -5.0);
  bad.set_lo(1, 0.0);
  bad.set_hi(1, 1.0);
  service::QueryRequest req;
  req.kind = service::QueryKind::kRangeProb;
  req.rect = bad;
  req.probability = 0.5;
  auto decoded = DecodeQueryRequestBatch(
      EncodeQueryRequestBatch(std::span<const service::QueryRequest>(&req, 1)));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded.value().size(), 1u);
  EXPECT_EQ(decoded.value()[0].rect.lo(0), 5.0);
  EXPECT_EQ(decoded.value()[0].rect.hi(0), -5.0);
  EXPECT_EQ(service::ValidateQueryRequest(decoded.value()[0], 2).code(),
            StatusCode::kInvalidArgument);
}

TEST(WireTest, QueryAnswerBatchRoundTrip) {
  std::vector<service::QueryAnswer> answers(3);
  answers[0].kind = service::QueryKind::kTopKByProb;
  answers[0].cache_hit = true;
  answers[0].results = {{12, 0.75}, {9, 0.125}};
  answers[1].kind = service::QueryKind::kTrajectoryPnn;
  answers[1].steps.resize(2);
  answers[1].steps[0].point = geom::Point(2);
  answers[1].steps[0].point[0] = 1.0;
  answers[1].steps[0].point[1] = -2.0;
  answers[1].steps[0].results = {{4, 0.5}};
  answers[1].steps[1].point = geom::Point(2);
  answers[1].steps[1].point[0] = 1.5;
  answers[1].steps[1].point[1] = -2.0;
  answers[1].steps[1].reused_step1 = true;
  answers[2].kind = service::QueryKind::kRangeProb;
  answers[2].status = Status::InvalidArgument("rect lo exceeds hi");
  auto decoded = DecodeQueryAnswerBatch(EncodeQueryAnswerBatch(answers));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded.value().size(), 3u);
  const auto& out = decoded.value();
  EXPECT_EQ(out[0].kind, service::QueryKind::kTopKByProb);
  EXPECT_TRUE(out[0].cache_hit);
  ASSERT_EQ(out[0].results.size(), 2u);
  EXPECT_EQ(out[0].results[0].id, 12u);
  EXPECT_EQ(out[0].results[0].probability, 0.75);
  ASSERT_EQ(out[1].steps.size(), 2u);
  EXPECT_EQ(out[1].steps[0].point[1], -2.0);
  ASSERT_EQ(out[1].steps[0].results.size(), 1u);
  EXPECT_EQ(out[1].steps[0].results[0].probability, 0.5);
  EXPECT_FALSE(out[1].steps[0].reused_step1);
  EXPECT_TRUE(out[1].steps[1].reused_step1);
  EXPECT_EQ(out[2].status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(out[2].status.ToString().find("exceeds hi"), std::string::npos);
}

TEST(WireTest, QueryAnswerBatchTruncationIsCorruption) {
  std::vector<service::QueryAnswer> answers(1);
  answers[0].kind = service::QueryKind::kTrajectoryPnn;
  answers[0].steps.resize(1);
  answers[0].steps[0].point = geom::Point(2);
  answers[0].steps[0].results = {{1, 1.0}};
  const std::vector<uint8_t> image = EncodeQueryAnswerBatch(answers);
  for (size_t len = 0; len < image.size(); ++len) {
    auto decoded = DecodeQueryAnswerBatch(
        std::span<const uint8_t>(image.data(), len));
    ASSERT_FALSE(decoded.ok()) << "truncated to " << len << " parsed";
    EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
  }
}

TEST(WireTest, RangeStep1RoundTrip) {
  std::vector<geom::Rect> ranges;
  for (int i = 0; i < 3; ++i) {
    geom::Rect r(2);
    r.set_lo(0, i);
    r.set_hi(0, i + 2.5);
    r.set_lo(1, -i);
    r.set_hi(1, i);
    ranges.push_back(r);
  }
  auto decoded = DecodeRangeStep1Request(EncodeRangeStep1Request(ranges));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded.value().size(), 3u);
  EXPECT_EQ(decoded.value()[2].lo(0), 2.0);
  EXPECT_EQ(decoded.value()[2].hi(0), 4.5);

  std::vector<shard::ShardRangeAnswer> answers(2);
  answers[0].ids = {3, 8, 21};
  answers[1].status = Status::Unavailable("shard draining");
  auto resp = DecodeRangeStep1Response(EncodeRangeStep1Response(answers));
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  ASSERT_EQ(resp.value().size(), 2u);
  EXPECT_EQ(resp.value()[0].ids, (std::vector<uncertain::ObjectId>{3, 8, 21}));
  EXPECT_EQ(resp.value()[1].status.code(), StatusCode::kUnavailable);
}

TEST(WireTest, RangeStep1TruncationIsCorruption) {
  geom::Rect r(2);
  r.set_hi(0, 1.0);
  r.set_hi(1, 1.0);
  const std::vector<geom::Rect> ranges{r};
  const std::vector<uint8_t> image = EncodeRangeStep1Request(ranges);
  for (size_t len = 0; len < image.size(); ++len) {
    auto decoded = DecodeRangeStep1Request(
        std::span<const uint8_t>(image.data(), len));
    ASSERT_FALSE(decoded.ok()) << "truncated to " << len << " parsed";
    EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
  }
}

// ---------------------------------------------------------------------------
// TcpServer + FrameClient end to end
// ---------------------------------------------------------------------------

TEST(TcpServerTest, OptionValidation) {
  TcpServerOptions options;
  options.port = 70000;
  EXPECT_EQ(ValidateTcpServerOptions(options).code(),
            StatusCode::kInvalidArgument);
  options = TcpServerOptions{};
  options.max_connections = 0;
  EXPECT_EQ(ValidateTcpServerOptions(options).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(ValidateTcpServerOptions(TcpServerOptions{}).ok());
  auto no_handler = TcpServer::Start(TcpServerOptions{}, nullptr);
  EXPECT_EQ(no_handler.status().code(), StatusCode::kInvalidArgument);
}

// An echo handler: returns the payload unchanged under the same type.
Result<std::unique_ptr<TcpServer>> StartEchoServer() {
  return TcpServer::Start(
      TcpServerOptions{},
      [](MessageType type, std::span<const uint8_t> payload)
          -> Result<std::pair<MessageType, std::vector<uint8_t>>> {
        if (type == MessageType::kFetchRecords) {
          return Status::NotFound("echo server holds no records");
        }
        return std::make_pair(
            type, std::vector<uint8_t>(payload.begin(), payload.end()));
      },
      [] { return std::string("pvdb_up 1\n"); });
}

TEST(TcpServerTest, EchoRoundTripOnEphemeralPort) {
  auto server = StartEchoServer();
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  EXPECT_GT(server.value()->port(), 0);
  auto client = FrameClient::Connect(server.value()->port(), 2000.0);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  const std::vector<uint8_t> payload = Payload({5, 4, 3, 2, 1});
  for (int i = 0; i < 3; ++i) {  // several calls on one connection
    auto response =
        client.value()->Call(MessageType::kQueryBatch, payload, 2000.0);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response.value().first, MessageType::kQueryBatch);
    EXPECT_EQ(response.value().second, payload);
  }
}

TEST(TcpServerTest, HandlerErrorComesBackAsStatusAndConnectionSurvives) {
  auto server = StartEchoServer();
  ASSERT_TRUE(server.ok());
  auto client = FrameClient::Connect(server.value()->port(), 2000.0);
  ASSERT_TRUE(client.ok());
  auto err = client.value()->Call(MessageType::kFetchRecords, {}, 2000.0);
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
  EXPECT_NE(err.status().ToString().find("no records"), std::string::npos);
  // A handler-level error must not desync the stream.
  auto ok = client.value()->Call(MessageType::kInfo, Payload({1}), 2000.0);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
}

TEST(TcpServerTest, CorruptFrameGetsErrorResponse) {
  auto server = StartEchoServer();
  ASSERT_TRUE(server.ok());
  // Hand-corrupt the CRC so the server sees a transport fault; the
  // deadline client would never produce these bytes, so speak raw.
  std::vector<uint8_t> frame =
      EncodeFrame(MessageType::kInfo, Payload({1, 2, 3}));
  frame[12] ^= 0xFF;
  const Status verdict = SendRawFrame(server.value()->port(), frame);
  EXPECT_EQ(verdict.code(), StatusCode::kCorruption);
  EXPECT_NE(verdict.ToString().find("CRC"), std::string::npos)
      << verdict.ToString();
}

TEST(TcpServerTest, ForeignPreambleGetsErrorAndClose) {
  auto server = StartEchoServer();
  ASSERT_TRUE(server.ok());
  const std::string garbage = "SSH-2.0-not-a-pvdb-peer\r\n";
  const Status verdict = SendRawFrame(
      server.value()->port(),
      std::vector<uint8_t>(garbage.begin(), garbage.end()));
  EXPECT_EQ(verdict.code(), StatusCode::kInvalidArgument)
      << verdict.ToString();
}

TEST(TcpServerTest, MetricsOverHttpOnTheSamePort) {
  auto server = StartEchoServer();
  ASSERT_TRUE(server.ok());
  auto response = HttpGet(server.value()->port(),
                          "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_NE(response.value().find("200 OK"), std::string::npos);
  EXPECT_NE(response.value().find("pvdb_up 1"), std::string::npos);
  auto missing = HttpGet(server.value()->port(),
                         "GET /other HTTP/1.1\r\nHost: x\r\n\r\n");
  ASSERT_TRUE(missing.ok());
  EXPECT_NE(missing.value().find("404"), std::string::npos);
}

TEST(FrameClientTest, DeadPortIsUnavailableNotAHang) {
  // Port 1 on loopback: nothing listens there.
  const auto start = std::chrono::steady_clock::now();
  auto client = FrameClient::Connect(1, 500.0);
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_FALSE(client.ok());
  EXPECT_EQ(client.status().code(), StatusCode::kUnavailable);
  EXPECT_LT(elapsed_ms, 5000.0) << "connect did not respect the deadline";
}

TEST(FrameClientTest, ServerGoneMidStreamIsUnavailable) {
  auto server = StartEchoServer();
  ASSERT_TRUE(server.ok());
  auto client = FrameClient::Connect(server.value()->port(), 2000.0);
  ASSERT_TRUE(client.ok());
  server.value()->Stop();
  auto response =
      client.value()->Call(MessageType::kInfo, Payload({1}), 500.0);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kUnavailable);
  // The stream is now marked broken; further calls fail fast.
  auto again = client.value()->Call(MessageType::kInfo, {}, 500.0);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kUnavailable);
}

// ---------------------------------------------------------------------------
// ShardServer over RemoteShardConnection + load generator
// ---------------------------------------------------------------------------

std::shared_ptr<const pv::IndexSnapshot> MakeSnapshot(size_t count,
                                                      uint64_t seed) {
  uncertain::SyntheticOptions options;
  options.dim = 2;
  options.count = count;
  options.samples_per_object = 16;
  options.seed = seed;
  const uncertain::Dataset db = uncertain::GenerateSynthetic(options);
  auto builder = pv::PvIndexBuilder::Build(db);
  EXPECT_TRUE(builder.ok()) << builder.status().ToString();
  auto snapshot = builder.value()->Seal();
  EXPECT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  return snapshot.value();
}

TEST(ShardServerTest, RemoteConnectionServesStep1AndRecords) {
  auto snapshot = MakeSnapshot(150, 21);
  auto server = shard::ShardServer::Start(snapshot, TcpServerOptions{});
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  shard::RemoteShardConnection remote(server.value()->port(), 2000.0);
  shard::LocalShardConnection local(snapshot);
  std::vector<geom::Point> queries;
  Rng rng(5);
  for (int i = 0; i < 8; ++i) {
    geom::Point q(2);
    q[0] = rng.NextUniform(0.0, 10000.0);
    q[1] = rng.NextUniform(0.0, 10000.0);
    queries.push_back(q);
  }
  auto remote_answers = remote.Step1Batch(queries);
  auto local_answers = local.Step1Batch(queries);
  ASSERT_TRUE(remote_answers.ok()) << remote_answers.status().ToString();
  ASSERT_TRUE(local_answers.ok());
  ASSERT_EQ(remote_answers.value().size(), local_answers.value().size());
  for (size_t i = 0; i < queries.size(); ++i) {
    const auto& r = remote_answers.value()[i].candidates;
    const auto& l = local_answers.value()[i].candidates;
    ASSERT_EQ(r.size(), l.size()) << "query " << i;
    for (size_t j = 0; j < r.size(); ++j) {
      EXPECT_EQ(r[j].id, l[j].id);
      EXPECT_EQ(r[j].min_dist_sq, l[j].min_dist_sq);
      EXPECT_EQ(r[j].max_dist_sq, l[j].max_dist_sq);
    }
  }

  // Record fetch round trip: bytes identical to the snapshot's record.
  const std::vector<uncertain::ObjectId> ids = snapshot->ObjectIds();
  ASSERT_FALSE(ids.empty());
  const std::vector<uncertain::ObjectId> want = {ids[0], ids[ids.size() / 2]};
  auto records = remote.FetchRecords(want);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records.value().size(), 2u);
  for (size_t i = 0; i < want.size(); ++i) {
    auto direct = snapshot->GetObject(want[i]);
    ASSERT_TRUE(direct.ok());
    std::vector<uint8_t> a;
    std::vector<uint8_t> b;
    records.value()[i].AppendTo(&a);
    direct.value().AppendTo(&b);
    EXPECT_EQ(a, b);
  }

  // Unknown id → NotFound from the shard, carried across the wire.
  auto missing = remote.FetchRecords(
      std::vector<uncertain::ObjectId>{99999999});
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(ShardServerTest, TypedQueryBatchMatchesLocalEngineBitForBit) {
  auto snapshot = MakeSnapshot(150, 24);
  auto server = shard::ShardServer::Start(snapshot, TcpServerOptions{});
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  // The reference: a local engine configured exactly like the server's
  // (ShardServer forces canonical candidate order on).
  service::QueryEngineOptions engine_options;
  engine_options.canonical_candidates = true;
  auto reference =
      service::QueryEngine::CreateFromSnapshot(snapshot, engine_options);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  // One request of every kind, placed in the synthetic data domain.
  geom::Point p(2);
  p[0] = 4200.0;
  p[1] = 5800.0;
  geom::Rect rect(2);
  rect.set_lo(0, 3000.0);
  rect.set_hi(0, 7000.0);
  rect.set_lo(1, 3000.0);
  rect.set_hi(1, 7000.0);
  geom::Point a(2);
  a[0] = 2000.0;
  a[1] = 2000.0;
  geom::Point b(2);
  b[0] = 8000.0;
  b[1] = 6000.0;
  std::vector<service::QueryRequest> requests;
  requests.push_back(service::QueryRequest::Pnn(p));
  requests.push_back(service::QueryRequest::TopKByProb(p, 2));
  requests.push_back(service::QueryRequest::ThresholdNN(p, 0.05));
  requests.push_back(service::QueryRequest::RangeProb(rect, 0.5));
  requests.push_back(service::QueryRequest::TrajectoryPnn({a, b}, 1500.0));
  const std::vector<service::QueryAnswer> want =
      reference.value()->ExecuteBatch(requests);

  auto client = FrameClient::Connect(server.value()->port(), 2000.0);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto response = client.value()->Call(MessageType::kQueryRequestBatch,
                                       EncodeQueryRequestBatch(requests),
                                       2000.0);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value().first, MessageType::kQueryAnswerBatch);
  auto got = DecodeQueryAnswerBatch(response.value().second);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_EQ(got.value().size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    SCOPED_TRACE("request " + std::to_string(i));
    EXPECT_TRUE(got.value()[i].status.ok())
        << got.value()[i].status.ToString();
    EXPECT_EQ(got.value()[i].kind, want[i].kind);
    ASSERT_EQ(got.value()[i].results.size(), want[i].results.size());
    for (size_t j = 0; j < want[i].results.size(); ++j) {
      EXPECT_EQ(got.value()[i].results[j].id, want[i].results[j].id);
      EXPECT_EQ(got.value()[i].results[j].probability,
                want[i].results[j].probability);
    }
    ASSERT_EQ(got.value()[i].steps.size(), want[i].steps.size());
    for (size_t s = 0; s < want[i].steps.size(); ++s) {
      const auto& gs = got.value()[i].steps[s];
      const auto& ws = want[i].steps[s];
      ASSERT_EQ(gs.results.size(), ws.results.size()) << "step " << s;
      for (size_t j = 0; j < ws.results.size(); ++j) {
        EXPECT_EQ(gs.results[j].id, ws.results[j].id);
        EXPECT_EQ(gs.results[j].probability, ws.results[j].probability);
      }
    }
  }
  // At least one trajectory sample beyond the first should reuse its
  // predecessor's leaf somewhere along an 1500-unit-step path... not
  // guaranteed for every dataset, so assert only the step count matches
  // the shared sampling rule.
  EXPECT_EQ(want[4].steps.size(),
            service::SampleTrajectory(requests[4].polyline, 1500.0).size());

  // A semantically malformed request (k = 0) answers per-request
  // InvalidArgument; the connection survives and sibling requests still
  // answer.
  std::vector<service::QueryRequest> mixed;
  mixed.push_back(service::QueryRequest::TopKByProb(p, 0));
  mixed.push_back(service::QueryRequest::Pnn(p));
  auto mixed_resp = client.value()->Call(MessageType::kQueryRequestBatch,
                                         EncodeQueryRequestBatch(mixed),
                                         2000.0);
  ASSERT_TRUE(mixed_resp.ok()) << mixed_resp.status().ToString();
  auto mixed_got = DecodeQueryAnswerBatch(mixed_resp.value().second);
  ASSERT_TRUE(mixed_got.ok());
  ASSERT_EQ(mixed_got.value().size(), 2u);
  EXPECT_EQ(mixed_got.value()[0].status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(mixed_got.value()[1].status.ok());
  EXPECT_FALSE(mixed_got.value()[1].results.empty());
}

TEST(ShardServerTest, RemoteRangeLegMatchesLocalConnection) {
  auto snapshot = MakeSnapshot(120, 25);
  auto server = shard::ShardServer::Start(snapshot, TcpServerOptions{});
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  shard::RemoteShardConnection remote(server.value()->port(), 2000.0);
  shard::LocalShardConnection local(snapshot);

  std::vector<geom::Rect> ranges;
  Rng rng(7);
  for (int i = 0; i < 6; ++i) {
    geom::Rect r(2);
    for (int d = 0; d < 2; ++d) {
      const double lo = rng.NextUniform(0.0, 8000.0);
      r.set_lo(d, lo);
      r.set_hi(d, lo + rng.NextUniform(500.0, 4000.0));
    }
    ranges.push_back(r);
  }
  auto remote_answers = remote.RangeStep1Batch(ranges);
  auto local_answers = local.RangeStep1Batch(ranges);
  ASSERT_TRUE(remote_answers.ok()) << remote_answers.status().ToString();
  ASSERT_TRUE(local_answers.ok());
  ASSERT_EQ(remote_answers.value().size(), ranges.size());
  size_t total = 0;
  for (size_t i = 0; i < ranges.size(); ++i) {
    EXPECT_TRUE(remote_answers.value()[i].status.ok());
    EXPECT_EQ(remote_answers.value()[i].ids, local_answers.value()[i].ids)
        << "range " << i;
    total += remote_answers.value()[i].ids.size();
  }
  EXPECT_GT(total, 0u) << "ranges this large should overlap some objects";
}

TEST(ShardServerTest, RemoteConnectionReconnectsAfterServerRestart) {
  auto snapshot = MakeSnapshot(80, 22);
  auto first = shard::ShardServer::Start(snapshot, TcpServerOptions{});
  ASSERT_TRUE(first.ok());
  const int port = first.value()->port();
  shard::RemoteShardConnection remote(port, 1000.0);
  std::vector<geom::Point> one(1, geom::Point(2));
  ASSERT_TRUE(remote.Step1Batch(one).ok());

  first.value()->Stop();
  auto while_down = remote.Step1Batch(one);
  ASSERT_FALSE(while_down.ok());
  EXPECT_EQ(while_down.status().code(), StatusCode::kUnavailable);

  // Same port, new process stand-in: the connection heals by itself.
  TcpServerOptions options;
  options.port = port;
  auto second = shard::ShardServer::Start(snapshot, options);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  auto healed = remote.Step1Batch(one);
  EXPECT_TRUE(healed.ok()) << healed.status().ToString();
}

TEST(LoadGenTest, OptionValidation) {
  LoadGenOptions options;
  options.target_qps = 0.0;
  EXPECT_EQ(ValidateLoadGenOptions(options).code(),
            StatusCode::kInvalidArgument);
  options = LoadGenOptions{};
  options.total_requests = 0;
  EXPECT_EQ(ValidateLoadGenOptions(options).code(),
            StatusCode::kInvalidArgument);
  options = LoadGenOptions{};
  options.heavy_tailed = true;
  options.pareto_alpha = 1.0;
  EXPECT_NE(ValidateLoadGenOptions(options).ToString().find("pareto"),
            std::string::npos);
  EXPECT_TRUE(ValidateLoadGenOptions(LoadGenOptions{}).ok());
}

TEST(LoadGenTest, OpenLoopRunAgainstAShardServer) {
  auto snapshot = MakeSnapshot(120, 23);
  auto server = shard::ShardServer::Start(snapshot, TcpServerOptions{});
  ASSERT_TRUE(server.ok());
  std::vector<geom::Point> queries;
  Rng rng(6);
  for (int i = 0; i < 16; ++i) {
    geom::Point q(2);
    q[0] = rng.NextUniform(0.0, 10000.0);
    q[1] = rng.NextUniform(0.0, 10000.0);
    queries.push_back(q);
  }
  LoadGenOptions options;
  options.target_qps = 400.0;
  options.total_requests = 60;
  options.batch_size = 2;
  auto report = RunLoadGen(server.value()->port(), queries, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().sent, 60);
  EXPECT_EQ(report.value().ok, 60);
  EXPECT_EQ(report.value().failed, 0);
  EXPECT_EQ(report.value().answer_errors, 0);
  EXPECT_EQ(report.value().latency_us.count(), 60);
  EXPECT_GT(report.value().latency_us.Percentile(99.0), 0);
  EXPECT_GT(report.value().achieved_qps, 0.0);
}

}  // namespace
}  // namespace pvdb::net
